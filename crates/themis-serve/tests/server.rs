//! Behavioral tests for the server: request/response round-trips against a
//! live listener, per-connection governance policy, admission control,
//! hostile input on the wire, and counter export.
//!
//! `serve()` blocks (its accept loops run on a `shims/rayon` pool), so every
//! test orchestrates two pool tasks: task 0 serves, task 1 drives clients
//! and then shuts the server down. Driver panics are caught so the server
//! always receives its shutdown and the test never hangs.

use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Themis, ThemisConfig, ThemisSession};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};
use themis_query::{EngineOptions, Trip};
use themis_serve::{Client, Json, ServerConfig, SetRequest, ThemisServer};

/// The skewed open-world dataset the differential suites use: a 2 000-row
/// population, a 300-row sample biased to `a < 3`, BN enabled.
fn world() -> Arc<ThemisSession> {
    static WORLD: OnceLock<Arc<ThemisSession>> = OnceLock::new();
    Arc::clone(WORLD.get_or_init(|| {
        let sizes = [5usize, 4, 3];
        let schema = Schema::new(vec![
            Attribute::new("a", Domain::indexed("a", sizes[0])),
            Attribute::new("b", Domain::indexed("b", sizes[1])),
            Attribute::new("c", Domain::indexed("c", sizes[2])),
        ]);
        let mut pop = Relation::new(schema);
        for i in 0..2_000usize {
            pop.push_row(&[
                ((i * 7 + i / 13) % sizes[0]) as u32,
                ((i * 5 + 1) % sizes[1]) as u32,
                ((i * 11 + i / 7) % sizes[2]) as u32,
            ]);
        }
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&pop, &[AttrId(0)]),
            AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
        ]);
        let n = pop.len() as f64;
        let rows: Vec<usize> = (0..pop.len())
            .filter(|&r| pop.value(r, AttrId(0)) < 3)
            .take(300)
            .collect();
        let sample = pop.select_rows(&rows);
        let config = ThemisConfig {
            bn_sample_size: Some(500),
            ..ThemisConfig::default()
        };
        Arc::new(ThemisSession::new(Themis::build(sample, aggregates, n, config)))
    }))
}

/// Serve `config` on an ephemeral port, run `drive` against it, shut down.
fn with_server(config: ServerConfig, drive: impl Fn(SocketAddr) + Sync) {
    let server = ThemisServer::bind("127.0.0.1:0", world(), config).expect("bind");
    let handle = server.handle();
    let addr = server.local_addr();
    let results = rayon::Pool::new(2)
        .try_par_indexed(2, |task| {
            if task == 0 {
                server.serve().map_err(|e| format!("serve failed: {e}"))
            } else {
                let caught = catch_unwind(AssertUnwindSafe(|| drive(addr)));
                handle.shutdown();
                caught.map_err(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "driver panicked".to_string())
                })
            }
        })
        .expect("orchestration pool");
    for r in results {
        if let Err(message) = r {
            panic!("{message}");
        }
    }
}

/// The engine options a default-config connection runs with (for oracle
/// comparisons).
fn default_engine() -> EngineOptions {
    let config = ServerConfig::default();
    EngineOptions {
        threads: config.threads,
        morsel_rows: config.morsel_rows,
        ..EngineOptions::default()
    }
}

#[test]
fn wire_answers_match_the_session_exactly() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let oracle = world();
        let engine = default_engine();
        for sql in [
            "SELECT COUNT(*) AS n FROM t",
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a",
            "SELECT a, b, COUNT(*) AS n, AVG(b) FROM t GROUP BY a, b ORDER BY n DESC LIMIT 3",
            // `a = '4'` is in the population but missing from the biased
            // sample: the open-world BN route.
            "SELECT COUNT(*) AS n FROM t WHERE a = '4'",
        ] {
            let wire = client.query(sql).expect(sql).expect(sql);
            let direct = oracle.sql_with(sql, &engine).expect(sql);
            assert_eq!(wire.result, direct.result, "{sql}");
            assert_eq!(wire.route, direct.route, "{sql}");
            let wire_explain = client.explain(sql).expect(sql).expect(sql);
            assert_eq!(wire_explain, oracle.explain_with(sql, &engine).expect(sql), "{sql}");
        }
    });
}

#[test]
fn typed_errors_cross_the_wire() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let err = client
            .query("SELECT COUNT(*) AS n FROM t WHERE zzz = '1'")
            .expect("transport")
            .expect_err("unknown column must fail");
        assert_eq!(err.kind, "unknown_column");
        let err = client
            .query("THIS IS NOT SQL")
            .expect("transport")
            .expect_err("parse error expected");
        assert_eq!(err.kind, "parse");
        // The connection survives errors.
        assert!(client.query("SELECT COUNT(*) AS n FROM t").expect("transport").is_ok());
    });
}

#[test]
fn set_governs_the_connection_and_null_clears() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let echo = client
            .set(&SetRequest {
                max_rows: Some(Some(5)),
                ..SetRequest::default()
            })
            .expect("transport")
            .expect("set");
        assert_eq!(echo.get("max_rows").and_then(Json::as_u64), Some(5));
        let err = client
            .query("SELECT COUNT(*) AS n FROM t")
            .expect("transport")
            .expect_err("row budget must trip");
        assert_eq!(err.kind, "governed");
        assert_eq!(err.trip, Some(Trip::RowBudget { limit: 5 }));
        // Clearing the budget restores service on the same connection.
        client
            .set(&SetRequest {
                max_rows: Some(None),
                ..SetRequest::default()
            })
            .expect("transport")
            .expect("set");
        assert!(client.query("SELECT COUNT(*) AS n FROM t").expect("transport").is_ok());
    });
}

#[test]
fn governance_policy_is_per_connection_not_global() {
    with_server(ServerConfig::default(), |addr| {
        let mut strict = Client::connect(addr).expect("connect");
        let mut lax = Client::connect(addr).expect("connect");
        strict
            .set(&SetRequest {
                max_rows: Some(Some(1)),
                ..SetRequest::default()
            })
            .expect("transport")
            .expect("set");
        let err = strict
            .query("SELECT COUNT(*) AS n FROM t")
            .expect("transport")
            .expect_err("strict connection must trip");
        assert_eq!(err.kind, "governed");
        // The other connection is untouched by the first one's policy.
        assert!(lax.query("SELECT COUNT(*) AS n FROM t").expect("transport").is_ok());
    });
}

#[test]
fn fault_injection_is_refused_unless_enabled() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let echo = client
            .set(&SetRequest {
                fault: Some(themis_core::FaultPlan::PanicAtMorsel { morsel: 0 }),
                ..SetRequest::default()
            })
            .expect("transport")
            .expect("set");
        // Hardened server: the fault member is ignored, echo says none.
        assert_eq!(echo.get("fault").and_then(Json::as_str), Some("none"));
        assert!(client.query("SELECT COUNT(*) AS n FROM t").expect("transport").is_ok());
    });
}

#[test]
fn admission_control_rejects_with_typed_busy() {
    let config = ServerConfig {
        max_concurrent_queries: 0,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let err = client
            .query("SELECT COUNT(*) AS n FROM t")
            .expect("transport")
            .expect_err("capacity zero must reject");
        assert_eq!(err.kind, "busy");
        // Non-query ops are not admission-controlled.
        assert!(client.stats().expect("transport").is_ok());
        let stats = client.stats().expect("transport").expect("stats");
        assert_eq!(stats.get("busy_rejections").and_then(Json::as_u64), Some(1));
    });
}

#[test]
fn hostile_lines_get_typed_errors_and_the_connection_survives() {
    let config = ServerConfig {
        max_line_bytes: 256,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let malformed = client.roundtrip_raw("{not json").expect("transport");
        assert!(malformed.contains("\"kind\":\"malformed\""), "{malformed}");
        let unknown_op = client
            .roundtrip_raw(r#"{"op":"warp"}"#)
            .expect("transport");
        assert!(unknown_op.contains("\"kind\":\"malformed\""), "{unknown_op}");
        let oversized = client
            .roundtrip_raw(&format!(
                r#"{{"op":"query","sql":"SELECT COUNT(*) AS n FROM t WHERE a = '{}'"}}"#,
                "x".repeat(600)
            ))
            .expect("transport");
        assert!(oversized.contains("\"kind\":\"oversized\""), "{oversized}");
        // After all that abuse, a normal query still works.
        assert!(client.query("SELECT COUNT(*) AS n FROM t").expect("transport").is_ok());
    });
}

#[test]
fn concurrent_connections_share_one_world_and_counters_add_up() {
    let config = ServerConfig {
        workers: 8,
        max_concurrent_queries: 8,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let oracle = world();
        let engine = default_engine();
        let expected = oracle
            .sql_with("SELECT b, COUNT(*) AS n FROM t GROUP BY b", &engine)
            .expect("oracle");
        let results = rayon::Pool::new(6)
            .try_par_indexed(6, |i| {
                let mut client = Client::connect(addr).expect("connect");
                let mut answers = Vec::new();
                for _ in 0..3 {
                    answers.push(
                        client
                            .query("SELECT b, COUNT(*) AS n FROM t GROUP BY b")
                            .expect("transport")
                            .unwrap_or_else(|e| panic!("client {i}: {e}")),
                    );
                }
                answers
            })
            .expect("client pool");
        for answers in &results {
            for wire in answers {
                assert_eq!(wire.result, expected.result);
                assert_eq!(wire.route, expected.route);
            }
        }
        let mut client = Client::connect(addr).expect("connect");
        let stats = client.stats().expect("transport").expect("stats");
        // 18 grouped queries all took the same route.
        let routes = stats.get("routes").expect("routes");
        let hybrid = routes.get("hybrid").and_then(Json::as_u64).expect("hybrid");
        let sample = routes.get("sample").and_then(Json::as_u64).expect("sample");
        assert_eq!(hybrid + sample, 18, "{stats}");
        assert_eq!(stats.get("queries").and_then(Json::as_u64), Some(18));
        assert_eq!(stats.get("connections").and_then(Json::as_u64), Some(7));
        assert_eq!(stats.get("active_queries").and_then(Json::as_u64), Some(0));
    });
}

/// Satellite exactness check: N concurrent clients each issue a *known*
/// query mix, and every stats/metrics counter must land on the exact
/// predicted total — not "roughly N", exactly N. Admission is sized so no
/// busy rejection can occur; the injected fault panics at a morsel index
/// only the 500-row BN replicates reach (morsel_rows=7 ⇒ the 300-row
/// sample scan has 43 morsels, a replicate 72), so every faulted hybrid
/// degrades deterministically instead of erroring outright.
#[test]
fn known_query_mix_produces_exact_counters() {
    const CLIENTS: usize = 4;
    let config = ServerConfig {
        workers: CLIENTS + 1,
        max_concurrent_queries: CLIENTS + 1,
        morsel_rows: 7,
        allow_fault_injection: true,
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        rayon::Pool::new(CLIENTS)
            .try_par_indexed(CLIENTS, |i| {
                let mut client = Client::connect(addr).expect("connect");
                let scalar = "SELECT COUNT(*) AS n FROM t";
                let grouped = "SELECT a, COUNT(*) AS n FROM t GROUP BY a";
                // 1. Trip the row budget: one error, one row-budget trip.
                client
                    .set(&SetRequest {
                        max_rows: Some(Some(5)),
                        ..SetRequest::default()
                    })
                    .expect("transport")
                    .expect("set");
                let err = client
                    .query(scalar)
                    .expect("transport")
                    .expect_err("budget must trip");
                assert_eq!(err.trip, Some(Trip::RowBudget { limit: 5 }), "client {i}");
                client
                    .set(&SetRequest {
                        max_rows: Some(None),
                        ..SetRequest::default()
                    })
                    .expect("transport")
                    .expect("set");
                // 2. Two sample-route scalars and one hybrid group-by.
                for _ in 0..2 {
                    client.query(scalar).expect("transport").expect("scalar");
                }
                client.query(grouped).expect("transport").expect("grouped");
                // 3. A worker failure confined to the consensus phase: the
                // hybrid degrades to its sample part.
                client
                    .set(&SetRequest {
                        fault: Some(themis_core::FaultPlan::PanicAtMorsel { morsel: 50 }),
                        ..SetRequest::default()
                    })
                    .expect("transport")
                    .expect("set");
                let degraded = client.query(grouped).expect("transport").expect("degraded");
                assert!(
                    matches!(degraded.route, themis_core::Route::Degraded { .. }),
                    "client {i}: {:?}",
                    degraded.route
                );
                client
                    .set(&SetRequest {
                        fault: Some(themis_core::FaultPlan::None),
                        ..SetRequest::default()
                    })
                    .expect("transport")
                    .expect("set");
            })
            .expect("client pool");
        // Every tally is an exact function of the mix above.
        let n = CLIENTS as u64;
        let mut checker = Client::connect(addr).expect("connect");
        let stats = checker.stats().expect("transport").expect("stats");
        assert_eq!(stats.get("queries").and_then(Json::as_u64), Some(5 * n));
        assert_eq!(stats.get("errors").and_then(Json::as_u64), Some(n));
        assert_eq!(stats.get("busy_rejections").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("active_queries").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("connections").and_then(Json::as_u64), Some(n + 1));
        let routes = stats.get("routes").expect("routes");
        assert_eq!(routes.get("sample").and_then(Json::as_u64), Some(2 * n));
        assert_eq!(routes.get("hybrid").and_then(Json::as_u64), Some(n));
        assert_eq!(routes.get("degraded").and_then(Json::as_u64), Some(n));
        assert_eq!(routes.get("bayes_net").and_then(Json::as_u64), Some(0));
        let reasons = stats.get("degrade_reasons").expect("degrade_reasons");
        assert_eq!(
            reasons.get("worker_failure").and_then(Json::as_u64),
            Some(n),
            "{stats}"
        );
        let trips = stats.get("trips").expect("trips");
        assert_eq!(trips.get("row_budget").and_then(Json::as_u64), Some(n));
        assert_eq!(trips.get("deadline").and_then(Json::as_u64), Some(0));
        // The metrics registry sees the same world: counters match the
        // stats body, and the latency histogram counted exactly the
        // successful queries.
        let metrics = checker.metrics().expect("transport").expect("metrics");
        assert_eq!(
            metrics.get("server.queries").and_then(Json::as_u64),
            Some(5 * n)
        );
        assert_eq!(
            metrics.get("server.errors").and_then(Json::as_u64),
            Some(n)
        );
        assert_eq!(
            metrics.get("server.routes.degraded").and_then(Json::as_u64),
            Some(n)
        );
        let latency = metrics.get("server.query_latency_us").expect("latency");
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(4 * n));
    });
}

#[test]
fn blank_lines_are_ignored_keepalives() {
    with_server(ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        // A blank line gets no response; the next real request is answered
        // in order — if the server responded to the blank line, this query
        // would read that response and fail to decode an answer from it.
        let response = client
            .roundtrip_raw("\n{\"op\":\"query\",\"sql\":\"SELECT COUNT(*) AS n FROM t\"}")
            .expect("transport");
        assert!(response.contains("\"ok\":true"), "{response}");
    });
}
