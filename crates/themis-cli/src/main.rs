//! `themis` — an interactive open-world SQL shell.
//!
//! ```text
//! $ cargo run -p themis-cli --release
//! themis> \load flights sample.csv cat,cat,num:12
//! themis> \aggregate flights origin_state aggregates_o.csv
//! themis> \population 7000000
//! themis> \build
//! themis> SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state;
//! ```
//!
//! The shell wraps the `themis-core` API: load a biased sample (CSV),
//! register published aggregates, build the model, then query it with the
//! supported SQL subset. Meta commands start with `\`; everything else is
//! parsed as SQL against the built model.

#![forbid(unsafe_code)]

use std::io::{BufRead, Write};
use themis_core::EngineOptions;

mod repl;

/// Engine options seeded from `THEMIS_THREADS` — this binary is the only
/// interactive surface that honours the variable, and it does so by parsing
/// it *into* [`EngineOptions`] once at startup. Library crates never read
/// the environment; `\threads <n>` adjusts the options afterwards.
fn engine_from_env() -> EngineOptions {
    let mut opts = EngineOptions::default();
    if let Some(threads) = std::env::var("THEMIS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
    {
        opts.threads = threads;
    }
    opts
}

fn main() {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut session = repl::Session::with_engine(engine_from_env());
    // Every stdout write checks its result: when the consumer goes away
    // (`themis | head` closing the pipe, say), the shell exits quietly
    // instead of dying on a write panic.
    if writeln!(
        out,
        "Themis open-world SQL shell — \\help for commands, \\quit to exit"
    )
    .is_err()
    {
        return;
    }
    loop {
        if write!(out, "themis> ").and_then(|()| out.flush()).is_err() {
            break; // stdout is gone (broken pipe)
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match session.handle(line.trim()) {
            repl::Outcome::Continue(output) => {
                if !output.is_empty() && writeln!(out, "{output}").is_err() {
                    break;
                }
            }
            repl::Outcome::Quit => break,
        }
    }
}
