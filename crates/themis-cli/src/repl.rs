//! REPL session state and command handling, separated from I/O so it can be
//! unit tested.
//!
//! The shell wraps a [`ThemisSession`]: `\build` constructs it from the
//! loaded sample + aggregates, SQL lines run through `session.sql` (so every
//! answer carries its [`Route`]), `\explain` shows the routing decision
//! without executing, and `\route` recalls the provenance of the last
//! answer. Engine configuration is explicit [`EngineOptions`] owned by the
//! shell — `main` seeds it from `THEMIS_THREADS` once at startup, and
//! `\threads` mutates it; no library code ever reads the environment.
//!
//! `\connect <addr>` switches the shell into client mode against a running
//! `themis-served`: SQL, `\explain`, and the governance commands all travel
//! the wire (governance becomes a per-connection `set` on the server), and
//! `\disconnect` returns to the local model. Answers keep their provenance
//! footer either way — the `Route` stamp crosses the wire intact.

use std::time::Duration;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{saturating_micros, EngineOptions, Route, Themis, ThemisConfig, ThemisSession};
use themis_data::ingest::{ingest_csv, ColumnSpec};
use themis_data::{AttrId, Relation};
use themis_serve::{Client, SetRequest};

/// What the loop should do after a line.
#[derive(Debug, PartialEq)]
pub enum Outcome {
    /// Print this (possibly empty) output and continue.
    Continue(String),
    /// Exit the shell.
    Quit,
}

/// Shell state: the loaded sample, registered aggregates, the engine
/// configuration, and the built query session.
pub struct Session {
    table_name: Option<String>,
    sample: Option<Relation>,
    aggregates: AggregateSet,
    population_size: Option<f64>,
    engine: EngineOptions,
    model: Option<ThemisSession>,
    last_route: Option<Route>,
    /// Client-mode connection to a `themis-served` (`\connect`), with the
    /// address it was opened against for status messages.
    remote: Option<(String, Client)>,
    /// `\trace on`: every SQL answer also prints its span tree (locally via
    /// `session.analyze`, remotely via the `"trace":true` request flag).
    trace_on: bool,
    /// `\cache on`: answer caching for the local model. Applied to the
    /// running session immediately and re-applied on every `\build`.
    cache_on: bool,
}

/// Answer-cache capacity for `\cache on` — plenty for an interactive
/// shell, bounded so a long exploration cannot grow without limit.
const CACHE_ENTRIES: usize = 256;

impl Session {
    /// Fresh session with default engine options.
    pub fn new() -> Self {
        Self::with_engine(EngineOptions::default())
    }

    /// Fresh session with explicit engine options (`main` passes the
    /// `THEMIS_THREADS`-seeded options here).
    pub fn with_engine(engine: EngineOptions) -> Self {
        Self {
            table_name: None,
            sample: None,
            aggregates: AggregateSet::new(),
            population_size: None,
            engine,
            model: None,
            last_route: None,
            remote: None,
            trace_on: false,
            cache_on: false,
        }
    }

    /// Handle one input line.
    pub fn handle(&mut self, line: &str) -> Outcome {
        if line.is_empty() {
            return Outcome::Continue(String::new());
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            return self.meta(cmd);
        }
        Outcome::Continue(self.sql(line))
    }

    fn meta(&mut self, cmd: &str) -> Outcome {
        let parts: Vec<&str> = cmd.split_whitespace().collect();
        match parts.first().copied() {
            Some("quit") | Some("q") | Some("exit") => Outcome::Quit,
            Some("help") => Outcome::Continue(HELP.to_string()),
            Some("load") => Outcome::Continue(self.cmd_load(&parts[1..])),
            Some("aggregate") => Outcome::Continue(self.cmd_aggregate(&parts[1..])),
            Some("population") => Outcome::Continue(self.cmd_population(&parts[1..])),
            Some("build") => Outcome::Continue(self.cmd_build()),
            Some("threads") => Outcome::Continue(self.cmd_threads(&parts[1..])),
            Some("deadline") => Outcome::Continue(self.cmd_deadline(&parts[1..])),
            Some("budget") => Outcome::Continue(self.cmd_budget(&parts[1..])),
            Some("connect") => Outcome::Continue(self.cmd_connect(&parts[1..])),
            Some("disconnect") => Outcome::Continue(self.cmd_disconnect()),
            Some("stats") => Outcome::Continue(self.cmd_stats()),
            Some("metrics") => Outcome::Continue(self.cmd_metrics()),
            Some("trace") => Outcome::Continue(self.cmd_trace(&parts[1..])),
            Some("cache") => Outcome::Continue(self.cmd_cache(&parts[1..])),
            Some("ingest") => Outcome::Continue(self.cmd_ingest(&parts[1..])),
            Some("explain") => {
                // Re-split from the raw command so the SQL keeps its
                // original spacing.
                let sql = cmd.strip_prefix("explain").unwrap_or("").trim();
                Outcome::Continue(self.cmd_explain(sql))
            }
            Some("route") => Outcome::Continue(self.cmd_route()),
            Some("status") => Outcome::Continue(self.cmd_status()),
            Some(other) => Outcome::Continue(format!("unknown command \\{other}; try \\help")),
            None => Outcome::Continue(String::new()),
        }
    }

    /// `\load <table> <file.csv> <spec,spec,...>` where spec is `cat` or
    /// `num:<buckets>`.
    fn cmd_load(&mut self, args: &[&str]) -> String {
        let [table, path, specs] = args else {
            return "usage: \\load <table> <file.csv> <cat|num:K>[,...]".into();
        };
        let specs: Result<Vec<ColumnSpec>, String> = specs
            .split(',')
            .map(|s| {
                if s == "cat" {
                    Ok(ColumnSpec::Categorical)
                } else if let Some(k) = s.strip_prefix("num:") {
                    k.parse::<usize>()
                        .map(|buckets| ColumnSpec::Numeric { buckets })
                        .map_err(|_| format!("bad bucket count in {s:?}"))
                } else {
                    Err(format!("bad column spec {s:?} (use cat or num:K)"))
                }
            })
            .collect();
        let specs = match specs {
            Ok(s) => s,
            Err(e) => return e,
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return format!("cannot read {path}: {e}"),
        };
        match ingest_csv(&text, &specs) {
            Ok(out) => {
                let msg = format!(
                    "loaded {} rows into {table} ({} null rows dropped)",
                    out.relation.len(),
                    out.dropped_nulls
                );
                self.table_name = Some(table.to_string());
                self.sample = Some(out.relation);
                self.model = None;
                msg
            }
            Err(e) => format!("ingest error: {e}"),
        }
    }

    /// `\aggregate <attr>[,<attr>...] <file.csv>` — the file has one header
    /// line (ignored) and rows `value[,value...],count`.
    fn cmd_aggregate(&mut self, args: &[&str]) -> String {
        let [attrs, path] = args else {
            return "usage: \\aggregate <attr>[,<attr>...] <file.csv>".into();
        };
        let Some(sample) = &self.sample else {
            return "load a sample first (\\load)".into();
        };
        let schema = sample.schema().clone();
        let attr_ids: Result<Vec<AttrId>, String> = attrs
            .split(',')
            .map(|name| {
                schema
                    .attr_id(name)
                    .ok_or_else(|| format!("unknown attribute {name:?}"))
            })
            .collect();
        let attr_ids = match attr_ids {
            Ok(a) => a,
            Err(e) => return e,
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return format!("cannot read {path}: {e}"),
        };
        let mut groups = Vec::new();
        for (i, line) in text.lines().skip(1).enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != attr_ids.len() + 1 {
                return format!(
                    "aggregate row {i}: expected {} fields, found {}",
                    attr_ids.len() + 1,
                    fields.len()
                );
            }
            let mut key = Vec::with_capacity(attr_ids.len());
            for (f, &a) in fields.iter().zip(&attr_ids) {
                match schema.domain(a).id_of(f) {
                    Some(id) => key.push(id),
                    // Values outside the sample's active domain cannot be
                    // represented; skip the group but keep going.
                    None => {
                        key.clear();
                        break;
                    }
                }
            }
            if key.is_empty() {
                continue;
            }
            // The arity check above guarantees a last field, but a parse
            // path must never be a panic away from killing the shell.
            let Some(count_field) = fields.last() else {
                continue;
            };
            let count: f64 = match count_field.parse() {
                Ok(c) => c,
                Err(_) => return format!("aggregate row {i}: bad count {count_field:?}"),
            };
            groups.push((key, count));
        }
        let n_groups = groups.len();
        self.aggregates
            .push(AggregateResult::from_groups(attr_ids, groups));
        self.model = None;
        format!("registered aggregate over {attrs} with {n_groups} groups")
    }

    fn cmd_population(&mut self, args: &[&str]) -> String {
        match args {
            [n] => match n.parse::<f64>() {
                Ok(v) if v > 0.0 => {
                    self.population_size = Some(v);
                    self.model = None;
                    format!("population size set to {v}")
                }
                _ => "population size must be a positive number".into(),
            },
            _ => "usage: \\population <n>".into(),
        }
    }

    fn cmd_build(&mut self) -> String {
        let Some(sample) = self.sample.clone() else {
            return "load a sample first (\\load)".into();
        };
        let Some(n) = self.population_size else {
            return "set the population size first (\\population <n>)".into();
        };
        if self.aggregates.is_empty() {
            return "register at least one aggregate first (\\aggregate)".into();
        }
        let model = Themis::build(sample, self.aggregates.clone(), n, ThemisConfig::default());
        let report = model
            .ipf_report()
            .map(|r| {
                format!(
                    "IPF: {} sweeps, violation {:.2e}, converged = {}",
                    r.iterations, r.final_violation, r.converged
                )
            })
            .unwrap_or_default();
        let mut session = ThemisSession::with_engine(model, self.engine.clone());
        if self.cache_on {
            session.set_answer_cache(CACHE_ENTRIES);
        }
        self.model = Some(session);
        self.last_route = None;
        format!("model built. {report}")
    }

    /// `\threads [<n>]` — show or set the query-engine thread count in this
    /// shell's [`EngineOptions`] (the running session, if any, is updated in
    /// place).
    fn cmd_threads(&mut self, args: &[&str]) -> String {
        match args {
            [] => format!("query engine: {}", self.engine.describe()),
            [n] => match n.parse::<usize>() {
                Ok(t) if t >= 1 => {
                    self.engine.threads = t;
                    if let Some(session) = &mut self.model {
                        session.set_engine(self.engine.clone());
                    }
                    if let Some(pushed) = self.push_remote_engine() {
                        return pushed;
                    }
                    format!("query engine: {}", self.engine.describe())
                }
                _ => "thread count must be a positive integer".into(),
            },
            _ => "usage: \\threads [<n>]".into(),
        }
    }

    /// `\deadline [<ms>|off]` — show, set, or clear the per-query deadline.
    /// A query past its deadline stops with a typed error; a hybrid query
    /// whose BN phase trips degrades to its sample part (the answer footer
    /// says so).
    fn cmd_deadline(&mut self, args: &[&str]) -> String {
        match args {
            [] => format!("governance: {}", self.engine.limits.describe()),
            ["off"] => {
                self.engine.limits.deadline = None;
                self.apply_engine()
            }
            [ms] => match ms.parse::<u64>() {
                Ok(v) if v >= 1 => {
                    self.engine.limits.deadline = Some(Duration::from_millis(v));
                    self.apply_engine()
                }
                _ => "deadline must be a positive number of milliseconds, or off".into(),
            },
            _ => "usage: \\deadline [<ms>|off]".into(),
        }
    }

    /// `\budget [rows <n>|groups <n>|off]` — show, set, or clear the row /
    /// group budgets.
    fn cmd_budget(&mut self, args: &[&str]) -> String {
        match args {
            [] => format!("governance: {}", self.engine.limits.describe()),
            ["off"] => {
                self.engine.limits.max_rows = None;
                self.engine.limits.max_groups = None;
                self.apply_engine()
            }
            ["rows", n] => match n.parse::<u64>() {
                Ok(v) if v >= 1 => {
                    self.engine.limits.max_rows = Some(v);
                    self.apply_engine()
                }
                _ => "row budget must be a positive integer".into(),
            },
            ["groups", n] => match n.parse::<usize>() {
                Ok(v) if v >= 1 => {
                    self.engine.limits.max_groups = Some(v);
                    self.apply_engine()
                }
                _ => "group budget must be a positive integer".into(),
            },
            _ => "usage: \\budget [rows <n>|groups <n>|off]".into(),
        }
    }

    /// Push the shell's engine options into the built session (if any) and
    /// the connected server (if any), and report the governance state that
    /// resulted.
    fn apply_engine(&mut self) -> String {
        if let Some(session) = &mut self.model {
            session.set_engine(self.engine.clone());
        }
        if let Some(pushed) = self.push_remote_engine() {
            return pushed;
        }
        format!("governance: {}", self.engine.limits.describe())
    }

    /// Mirror the shell's engine options to the connected server as a
    /// per-connection `set`. Returns the message to print when connected
    /// (`None` when there is no connection, so callers fall through to the
    /// local description).
    fn push_remote_engine(&mut self) -> Option<String> {
        let (addr, client) = self.remote.as_mut()?;
        let request = SetRequest {
            // Through the saturating helper (not a lossy `as` cast) so the
            // value survives the f64 wire encoding exactly.
            deadline_ms: Some(
                self.engine
                    .limits
                    .deadline
                    .map(|d| saturating_micros(d) / 1_000),
            ),
            max_rows: Some(self.engine.limits.max_rows),
            max_groups: Some(self.engine.limits.max_groups.map(|g| g as u64)),
            threads: Some(self.engine.threads as u64),
            morsel_rows: None,
            fault: None,
        };
        let addr = addr.clone();
        Some(match client.set(&request) {
            Ok(Ok(_)) => format!(
                "governance on {addr}: {} ({} threads)",
                self.engine.limits.describe(),
                self.engine.threads
            ),
            Ok(Err(e)) => format!("server rejected settings: {e}"),
            Err(e) => self.drop_remote(&format!("connection to {addr} lost: {e}")),
        })
    }

    /// `\connect <addr>` — switch into client mode against a running
    /// `themis-served`; the connection immediately inherits the shell's
    /// governance settings.
    fn cmd_connect(&mut self, args: &[&str]) -> String {
        let [addr] = args else {
            return "usage: \\connect <host:port>".into();
        };
        match Client::connect(*addr) {
            Ok(client) => {
                self.remote = Some((addr.to_string(), client));
                let pushed = self
                    .push_remote_engine()
                    .unwrap_or_else(|| "governance: default".into());
                format!(
                    "connected to {addr}; SQL now runs on the server (\\disconnect to return)\n{pushed}"
                )
            }
            Err(e) => format!("cannot connect to {addr}: {e}"),
        }
    }

    /// `\disconnect` — drop the server connection and return to the local
    /// model (if one is built).
    fn cmd_disconnect(&mut self) -> String {
        match self.remote.take() {
            Some((addr, _)) => format!("disconnected from {addr}"),
            None => "not connected".into(),
        }
    }

    /// `\stats` — the connected server's counters (connections, queries,
    /// per-route and per-degrade-reason tallies), verbatim.
    fn cmd_stats(&mut self) -> String {
        let Some((addr, client)) = self.remote.as_mut() else {
            return "not connected (\\connect <host:port>)".into();
        };
        let addr = addr.clone();
        match client.stats() {
            Ok(Ok(stats)) => format!("server {addr}: {stats}"),
            Ok(Err(e)) => format!("error: {e}"),
            Err(e) => self.drop_remote(&format!("connection to {addr} lost: {e}")),
        }
    }

    /// `\metrics` — the connected server's metrics registry export:
    /// counters, gauges, and the query-latency histogram (p50/p90/p99).
    fn cmd_metrics(&mut self) -> String {
        let Some((addr, client)) = self.remote.as_mut() else {
            return "not connected (\\connect <host:port>)".into();
        };
        let addr = addr.clone();
        match client.metrics() {
            Ok(Ok(metrics)) => format!("server {addr}: {metrics}"),
            Ok(Err(e)) => format!("error: {e}"),
            Err(e) => self.drop_remote(&format!("connection to {addr} lost: {e}")),
        }
    }

    /// `\trace [on|off]` — toggle per-query tracing. While on, every SQL
    /// answer is followed by the span tree that produced it; answers stay
    /// bit-identical to untraced runs.
    fn cmd_trace(&mut self, args: &[&str]) -> String {
        match args {
            [] => format!("trace: {}", if self.trace_on { "on" } else { "off" }),
            ["on"] => {
                self.trace_on = true;
                "trace: on (answers now include their span tree)".into()
            }
            ["off"] => {
                self.trace_on = false;
                "trace: off".into()
            }
            _ => "usage: \\trace [on|off]".into(),
        }
    }

    /// `\cache [on|off|stats]` — toggle the local model's answer cache or
    /// show cache/ingest counters. Cached answers are bit-identical to
    /// fresh execution; the cache only changes latency. In client mode
    /// `stats` shows the server's counters (the server owns its cache).
    fn cmd_cache(&mut self, args: &[&str]) -> String {
        match args {
            [] => format!("cache: {}", if self.cache_on { "on" } else { "off" }),
            ["on"] => {
                self.cache_on = true;
                if let Some(session) = &mut self.model {
                    session.set_answer_cache(CACHE_ENTRIES);
                }
                if self.remote.is_some() {
                    return "cache: on for the local model; the server owns its own cache".into();
                }
                format!("cache: on ({CACHE_ENTRIES} entries)")
            }
            ["off"] => {
                self.cache_on = false;
                if let Some(session) = &mut self.model {
                    session.disable_answer_cache();
                }
                "cache: off (contents dropped)".into()
            }
            ["stats"] => self.cmd_cache_stats(),
            _ => "usage: \\cache [on|off|stats]".into(),
        }
    }

    /// The `\cache stats` body: server counters when connected, the local
    /// session's live snapshot otherwise.
    fn cmd_cache_stats(&mut self) -> String {
        if let Some((addr, client)) = self.remote.as_mut() {
            let addr = addr.clone();
            return match client.stats() {
                Ok(Ok(stats)) => {
                    let cache = stats.get("cache").map(|j| j.to_string());
                    let ingest = stats.get("ingest").map(|j| j.to_string());
                    match (cache, ingest) {
                        (Some(c), Some(i)) => {
                            format!("server {addr}:\n  cache: {c}\n  ingest: {i}")
                        }
                        _ => format!("server {addr} reports no cache section: {stats}"),
                    }
                }
                Ok(Err(e)) => format!("error: {e}"),
                Err(e) => self.drop_remote(&format!("connection to {addr} lost: {e}")),
            };
        }
        let Some(session) = &self.model else {
            return "build the model first (\\build)".into();
        };
        let s = session.live_snapshot();
        format!(
            "cache: {} hits, {} misses, {} bypasses, {} evictions, {} invalidations, {} entries\n\
             ingest: {} batches, {} rows, generation {}, {} replicates resimulated, {} kept",
            s.cache_hits,
            s.cache_misses,
            s.cache_bypasses,
            s.cache_evictions,
            s.cache_invalidations,
            s.cache_entries,
            s.ingest_batches,
            s.ingest_rows,
            s.generation,
            s.replicates_resimulated,
            s.replicates_kept,
        )
    }

    /// `\ingest <table> <v,v,...> [<v,v,...> ...]` — append labeled rows to
    /// the model (a new world generation; cached answers for the table are
    /// invalidated). In client mode the rows travel to the server and every
    /// connection sees the new generation.
    fn cmd_ingest(&mut self, args: &[&str]) -> String {
        let [table, row_specs @ ..] = args else {
            return "usage: \\ingest <table> <v,v,...> [<v,v,...> ...]".into();
        };
        if row_specs.is_empty() {
            return "usage: \\ingest <table> <v,v,...> [<v,v,...> ...]".into();
        }
        let rows: Vec<Vec<String>> = row_specs
            .iter()
            .map(|spec| spec.split(',').map(|v| v.trim().to_string()).collect())
            .collect();
        if let Some((addr, client)) = self.remote.as_mut() {
            let addr = addr.clone();
            return match client.ingest(table, &rows) {
                Ok(Ok(report)) => describe_ingest(&report),
                Ok(Err(e)) => format!("error: {e}"),
                Err(e) => self.drop_remote(&format!("connection to {addr} lost: {e}")),
            };
        }
        let Some(session) = &self.model else {
            return "build the model first (\\build)".into();
        };
        match session.ingest(table, &rows) {
            Ok(report) => describe_ingest(&report),
            Err(e) => format!("error: {e}"),
        }
    }

    /// Tear down a dead connection and return the message to show.
    fn drop_remote(&mut self, message: &str) -> String {
        self.remote = None;
        message.to_string()
    }

    /// `\explain <sql>` — show where the query would be routed, without
    /// executing it. In client mode the server answers.
    fn cmd_explain(&mut self, sql: &str) -> String {
        if sql.is_empty() {
            return "usage: \\explain <sql>".into();
        }
        if let Some((addr, client)) = self.remote.as_mut() {
            let addr = addr.clone();
            return match client.explain(sql) {
                Ok(Ok(explain)) => explain.to_string(),
                Ok(Err(e)) => format!("error: {e}"),
                Err(e) => self.drop_remote(&format!("connection to {addr} lost: {e}")),
            };
        }
        let Some(session) = &self.model else {
            return "build the model first (\\build)".into();
        };
        match session.explain(sql) {
            Ok(explain) => explain.to_string(),
            Err(e) => format!("error: {e}"),
        }
    }

    /// `\route` — the provenance of the last executed query.
    fn cmd_route(&self) -> String {
        match &self.last_route {
            Some(route) => format!("last query answered by: {route}"),
            None => "no query executed yet".into(),
        }
    }

    fn cmd_status(&self) -> String {
        let mut out = String::new();
        match (&self.table_name, &self.sample) {
            (Some(t), Some(s)) => {
                out.push_str(&format!("table {t}: {} rows, {} attributes\n", s.len(), s.schema().arity()));
                for a in s.schema().attributes() {
                    out.push_str(&format!("  {} ({} values)\n", a.name(), a.domain().size()));
                }
            }
            _ => out.push_str("no sample loaded\n"),
        }
        out.push_str(&format!("aggregates: {}\n", self.aggregates.len()));
        match self.population_size {
            Some(n) => out.push_str(&format!("population size: {n}\n")),
            None => out.push_str("population size: unset\n"),
        }
        out.push_str(&format!("query engine: {}\n", self.engine.describe()));
        if self.trace_on {
            out.push_str("trace: on\n");
        }
        if self.cache_on {
            out.push_str(&format!("cache: on ({CACHE_ENTRIES} entries)\n"));
        }
        if let Some((addr, _)) = &self.remote {
            out.push_str(&format!("connected to: {addr} (client mode)\n"));
        }
        if let Some(route) = &self.last_route {
            out.push_str(&format!("last route: {route}\n"));
        }
        match &self.model {
            Some(s) => {
                out.push_str("model: built\n");
                out.push_str(&s.model().describe());
            }
            None => out.push_str("model: not built"),
        }
        out
    }

    fn sql(&mut self, sql: &str) -> String {
        let trace_on = self.trace_on;
        if let Some((addr, client)) = self.remote.as_mut() {
            let addr = addr.clone();
            if trace_on {
                return match client.query_traced(sql) {
                    Ok(Ok((answer, trace))) => {
                        let footer = format!(
                            "-- {} [{:.1} ms on {addr}]",
                            answer.route,
                            answer.elapsed.as_secs_f64() * 1e3
                        );
                        self.last_route = Some(answer.route.clone());
                        format!("{}{footer}\ntrace:\n{}", answer.result, trace.render())
                    }
                    Ok(Err(e)) => format!("error: {e}"),
                    Err(e) => self.drop_remote(&format!("connection to {addr} lost: {e}")),
                };
            }
            return match client.query(sql) {
                Ok(Ok(answer)) => {
                    let footer = format!(
                        "-- {} [{:.1} ms on {addr}]",
                        answer.route,
                        answer.elapsed.as_secs_f64() * 1e3
                    );
                    self.last_route = Some(answer.route.clone());
                    format!("{}{footer}", answer.result)
                }
                Ok(Err(e)) => format!("error: {e}"),
                Err(e) => self.drop_remote(&format!("connection to {addr} lost: {e}")),
            };
        }
        let Some(session) = &self.model else {
            return "build the model first (\\build)".into();
        };
        if trace_on {
            return match session.analyze(sql) {
                Ok(analyzed) => {
                    let footer = format!(
                        "-- {} [{:.1} ms]",
                        analyzed.answer.route,
                        analyzed.answer.elapsed.as_secs_f64() * 1e3
                    );
                    self.last_route = Some(analyzed.answer.route.clone());
                    format!(
                        "{}{footer}\ntrace:\n{}groups: estimated {}, actual {}",
                        analyzed.answer.result,
                        analyzed.trace.render(),
                        analyzed.estimated_groups,
                        analyzed.actual_groups
                    )
                }
                Err(e) => format!("error: {e}"),
            };
        }
        match session.sql(sql) {
            Ok(answer) => {
                let footer = format!(
                    "-- {} [{:.1} ms]",
                    answer.route,
                    answer.elapsed.as_secs_f64() * 1e3
                );
                self.last_route = Some(answer.route.clone());
                format!("{}{footer}", answer.result)
            }
            Err(e) => format!("error: {e}"),
        }
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

/// One line summarizing an applied ingest, shared by local and client mode.
fn describe_ingest(report: &themis_core::IngestReport) -> String {
    format!(
        "ingested {} rows into {} (sample now {} rows, generation {}, BN {}, \
         {} replicates kept, {} cached answers dropped)",
        report.rows_added,
        report.table,
        report.sample_rows,
        report.generation,
        if report.bn_moved { "moved" } else { "unchanged" },
        report.replicates_kept,
        report.cache_entries_dropped,
    )
}

const HELP: &str = "\
commands:
  \\load <table> <file.csv> <cat|num:K>[,...]   load a biased sample
  \\aggregate <attr>[,<attr>...] <file.csv>     register a population aggregate
                                               (rows: value[,value...],count)
  \\population <n>                              set the population size
  \\build                                       build the Themis model
  \\threads [<n>]                               show or set query-engine threads
  \\deadline [<ms>|off]                         show, set, or clear the query deadline
  \\budget [rows <n>|groups <n>|off]            show, set, or clear result budgets
  \\explain <sql>                               show where a query would route
                                               (Sample / BayesNet / Hybrid)
  \\route                                       provenance of the last answer
  \\trace [on|off]                              print each answer's span tree
                                               (EXPLAIN ANALYZE; answers unchanged)
  \\cache [on|off|stats]                        answer cache by plan fingerprint
                                               (bit-identical; latency only)
  \\ingest <table> <v,v,...> [...]              append labeled rows: new generation,
                                               incremental reweighting, cache invalidation
  \\status                                      show session state
  \\connect <host:port>                         client mode: run SQL on a themis-served
  \\disconnect                                  leave client mode
  \\stats                                       connected server's counters
  \\metrics                                     connected server's metrics registry
                                               (incl. query-latency p50/p90/p99)
  \\quit                                        exit
anything else is executed as SQL against the model, e.g.
  SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state;";

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("themis-cli-test-{name}"));
        let mut f = std::fs::File::create(&path).expect("temp file");
        f.write_all(content.as_bytes()).expect("write");
        path
    }

    fn full_session() -> Session {
        let sample = write_temp(
            "sample.csv",
            "state,month\nCA,01\nCA,01\nCA,02\nNY,01\n",
        );
        let agg = write_temp("agg.csv", "state,count\nCA,30\nNY,70\n");
        let mut s = Session::new();
        assert!(matches!(
            s.handle(&format!("\\load flights {} cat,cat", sample.display())),
            Outcome::Continue(_)
        ));
        let out = s.handle(&format!("\\aggregate state {}", agg.display()));
        assert!(matches!(out, Outcome::Continue(ref m) if m.contains("2 groups")), "{out:?}");
        s.handle("\\population 100");
        let out = s.handle("\\build");
        assert!(matches!(out, Outcome::Continue(ref m) if m.contains("model built")), "{out:?}");
        s
    }

    #[test]
    fn end_to_end_session_answers_sql() {
        let mut s = full_session();
        let out = s.handle("SELECT state, COUNT(*) FROM flights GROUP BY state");
        let Outcome::Continue(text) = out else {
            panic!("expected output")
        };
        assert!(text.contains("CA"), "{text}");
        assert!(text.contains("NY"), "{text}");
        // Every answer is stamped with its provenance.
        assert!(text.contains("-- Hybrid ("), "{text}");
        // NY is underrepresented in the sample (1 of 4 rows) but the
        // aggregate says it is 70% of the population: the debiased count
        // must exceed CA's.
        let ca: f64 = extract_count(&text, "CA");
        let ny: f64 = extract_count(&text, "NY");
        assert!(ny > ca, "NY {ny} should exceed CA {ca}\n{text}");
    }

    fn extract_count(table: &str, label: &str) -> f64 {
        table
            .lines()
            .find(|l| l.starts_with(label))
            .and_then(|l| l.split('|').nth(1))
            .and_then(|c| c.trim().parse().ok())
            .unwrap_or_else(|| panic!("row {label} not found in {table}"))
    }

    #[test]
    fn commands_require_prerequisites() {
        let mut s = Session::new();
        assert!(matches!(
            s.handle("SELECT COUNT(*) FROM t"),
            Outcome::Continue(ref m) if m.contains("\\build")
        ));
        assert!(matches!(
            s.handle("\\build"),
            Outcome::Continue(ref m) if m.contains("\\load")
        ));
        assert!(matches!(
            s.handle("\\aggregate state nowhere.csv"),
            Outcome::Continue(ref m) if m.contains("\\load")
        ));
    }

    #[test]
    fn quit_and_help_work() {
        let mut s = Session::new();
        assert_eq!(s.handle("\\quit"), Outcome::Quit);
        assert!(matches!(
            s.handle("\\help"),
            Outcome::Continue(ref m) if m.contains("\\explain")
        ));
        assert!(matches!(
            s.handle("\\nonsense"),
            Outcome::Continue(ref m) if m.contains("unknown command")
        ));
    }

    #[test]
    fn status_reports_state() {
        let mut s = full_session();
        let Outcome::Continue(status) = s.handle("\\status") else {
            panic!()
        };
        assert!(status.contains("4 rows"));
        assert!(status.contains("aggregates: 1"));
        assert!(status.contains("model: built"));
        assert!(status.contains("query engine: morsel-driven"), "{status}");
    }

    #[test]
    fn threads_command_updates_engine_options() {
        let mut s = Session::new();
        let Outcome::Continue(out) = s.handle("\\threads 4") else {
            panic!()
        };
        assert!(out.contains("4 threads"), "{out}");
        assert_eq!(s.engine.threads, 4);
        let Outcome::Continue(out) = s.handle("\\threads 1") else {
            panic!()
        };
        assert!(out.contains("1 thread,"), "{out}");
        let Outcome::Continue(out) = s.handle("\\threads zero") else {
            panic!()
        };
        assert!(out.contains("positive integer"), "{out}");
        // A built session picks the new options up immediately.
        let mut s = full_session();
        s.handle("\\threads 3");
        assert_eq!(s.model.as_ref().unwrap().engine().threads, 3);
    }

    #[test]
    fn explain_shows_sample_route_for_in_sample_point_query() {
        let mut s = full_session();
        let Outcome::Continue(out) = s.handle("\\explain SELECT COUNT(*) FROM flights WHERE state = 'CA'") else {
            panic!()
        };
        assert!(out.contains("route: Sample"), "{out}");
        assert!(out.contains("hits the sample"), "{out}");
    }

    #[test]
    fn explain_shows_hybrid_route_for_group_by() {
        let mut s = full_session();
        let Outcome::Continue(out) =
            s.handle("\\explain SELECT state, COUNT(*) FROM flights GROUP BY state")
        else {
            panic!()
        };
        assert!(out.contains("route: Hybrid"), "{out}");
        assert!(out.contains("BN replicates"), "{out}");
        // The executed query takes the route explain promised.
        let Outcome::Continue(answer) = s.handle("SELECT state, COUNT(*) FROM flights GROUP BY state")
        else {
            panic!()
        };
        assert!(answer.contains("-- Hybrid ("), "{answer}");
        let Outcome::Continue(route) = s.handle("\\route") else {
            panic!()
        };
        assert!(route.contains("Hybrid"), "{route}");
    }

    #[test]
    fn explain_without_model_is_an_error_message() {
        let mut s = Session::new();
        let Outcome::Continue(out) = s.handle("\\explain SELECT COUNT(*) FROM flights") else {
            panic!()
        };
        assert!(out.contains("\\build"), "{out}");
        // And with a model but unparsable SQL, the error surfaces cleanly.
        let mut s = full_session();
        let Outcome::Continue(out) = s.handle("\\explain SELEKT nope") else {
            panic!()
        };
        assert!(out.contains("error:"), "{out}");
        let Outcome::Continue(out) = s.handle("\\explain") else {
            panic!()
        };
        assert!(out.contains("usage"), "{out}");
    }

    #[test]
    fn route_before_any_query_says_so() {
        let mut s = full_session();
        let Outcome::Continue(out) = s.handle("\\route") else {
            panic!()
        };
        assert!(out.contains("no query executed yet"), "{out}");
    }

    #[test]
    fn deadline_and_budget_commands_manage_governance() {
        let mut s = Session::new();
        // Show before set: governance starts off.
        assert!(matches!(
            s.handle("\\deadline"),
            Outcome::Continue(ref m) if m.contains("off")
        ));
        let Outcome::Continue(out) = s.handle("\\deadline 250") else {
            panic!()
        };
        assert!(out.contains("deadline 250ms"), "{out}");
        assert_eq!(
            s.engine.limits.deadline,
            Some(Duration::from_millis(250))
        );
        let Outcome::Continue(out) = s.handle("\\budget rows 1000") else {
            panic!()
        };
        assert!(out.contains("1000 rows"), "{out}");
        s.handle("\\budget groups 50");
        assert_eq!(s.engine.limits.max_rows, Some(1000));
        assert_eq!(s.engine.limits.max_groups, Some(50));
        // Armed limits show up in the engine status line.
        let Outcome::Continue(status) = s.handle("\\status") else {
            panic!()
        };
        assert!(status.contains("limits:"), "{status}");
        // `off` clears both budgets, `\deadline off` the deadline.
        s.handle("\\budget off");
        s.handle("\\deadline off");
        assert!(s.engine.limits.is_unlimited());
        // Bad input is a message, not a panic.
        assert!(matches!(
            s.handle("\\deadline soon"),
            Outcome::Continue(ref m) if m.contains("milliseconds")
        ));
        assert!(matches!(
            s.handle("\\budget rows many"),
            Outcome::Continue(ref m) if m.contains("positive integer")
        ));
        assert!(matches!(
            s.handle("\\budget cpu 3"),
            Outcome::Continue(ref m) if m.contains("usage")
        ));
    }

    #[test]
    fn tripped_budget_is_an_error_message_not_a_crash() {
        let mut s = full_session();
        // A 1-row budget trips on the 4-row sample scan itself.
        s.handle("\\budget rows 1");
        assert_eq!(
            s.model.as_ref().unwrap().engine().limits.max_rows,
            Some(1),
            "built session must pick armed limits up immediately"
        );
        let Outcome::Continue(out) =
            s.handle("SELECT state, COUNT(*) FROM flights GROUP BY state")
        else {
            panic!()
        };
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("row budget exceeded"), "{out}");
        // Lifting the budget restores normal answers in the same session.
        s.handle("\\budget off");
        let Outcome::Continue(out) =
            s.handle("SELECT state, COUNT(*) FROM flights GROUP BY state")
        else {
            panic!()
        };
        assert!(out.contains("-- Hybrid ("), "{out}");
    }

    #[test]
    fn trace_toggle_prints_span_tree_and_leaves_answers_identical() {
        let mut s = full_session();
        let sql = "SELECT state, COUNT(*) FROM flights GROUP BY state";
        let Outcome::Continue(untraced) = s.handle(sql) else {
            panic!()
        };
        let Outcome::Continue(out) = s.handle("\\trace on") else {
            panic!()
        };
        assert!(out.contains("trace: on"), "{out}");
        let Outcome::Continue(traced) = s.handle(sql) else {
            panic!()
        };
        // The answer table is bit-identical; tracing only appends.
        assert_eq!(
            untraced.split("\n-- ").next(),
            traced.split("\n-- ").next(),
            "{traced}"
        );
        assert!(traced.contains("trace:"), "{traced}");
        assert!(traced.contains("query ["), "{traced}");
        assert!(traced.contains("hybrid ["), "{traced}");
        assert!(traced.contains("rows_scanned="), "{traced}");
        // EXPLAIN ANALYZE extras: estimated vs actual group counts.
        assert!(traced.contains("groups: estimated 2, actual 2"), "{traced}");
        // Status reflects the toggle; `off` restores plain answers.
        let Outcome::Continue(status) = s.handle("\\status") else {
            panic!()
        };
        assert!(status.contains("trace: on"), "{status}");
        s.handle("\\trace off");
        let Outcome::Continue(out) = s.handle(sql) else {
            panic!()
        };
        assert!(!out.contains("trace:"), "{out}");
        assert!(matches!(
            s.handle("\\trace maybe"),
            Outcome::Continue(ref m) if m.contains("usage")
        ));
        assert!(matches!(
            s.handle("\\trace"),
            Outcome::Continue(ref m) if m.contains("trace: off")
        ));
    }

    #[test]
    fn cache_commands_toggle_and_report() {
        let mut s = full_session();
        assert!(matches!(
            s.handle("\\cache"),
            Outcome::Continue(ref m) if m.contains("cache: off")
        ));
        let Outcome::Continue(out) = s.handle("\\cache on") else {
            panic!()
        };
        assert!(out.contains("cache: on"), "{out}");
        // A repeated query is served from the cache, bit-identically
        // (same answer table), and the counters say so.
        let sql = "SELECT state, COUNT(*) FROM flights GROUP BY state";
        let Outcome::Continue(cold) = s.handle(sql) else {
            panic!()
        };
        let Outcome::Continue(warm) = s.handle(sql) else {
            panic!()
        };
        assert_eq!(
            cold.split("\n-- ").next(),
            warm.split("\n-- ").next(),
            "cached answer diverged"
        );
        let Outcome::Continue(stats) = s.handle("\\cache stats") else {
            panic!()
        };
        assert!(stats.contains("1 hits"), "{stats}");
        assert!(stats.contains("1 misses"), "{stats}");
        assert!(stats.contains("1 entries"), "{stats}");
        // Status shows the toggle; `off` drops the contents.
        let Outcome::Continue(status) = s.handle("\\status") else {
            panic!()
        };
        assert!(status.contains("cache: on"), "{status}");
        let Outcome::Continue(out) = s.handle("\\cache off") else {
            panic!()
        };
        assert!(out.contains("cache: off"), "{out}");
        assert!(matches!(
            s.handle("\\cache sideways"),
            Outcome::Continue(ref m) if m.contains("usage")
        ));
        // `\cache stats` without a model is a hint, not a crash.
        let mut fresh = Session::new();
        fresh.handle("\\cache on");
        assert!(matches!(
            fresh.handle("\\cache stats"),
            Outcome::Continue(ref m) if m.contains("\\build")
        ));
    }

    #[test]
    fn ingest_command_grows_the_model_and_reports() {
        let mut s = full_session();
        s.handle("\\cache on");
        // `state` totals are pinned by the registered aggregate (IPF holds
        // them fixed whatever the sample), so observe the unconstrained
        // `month` dimension instead.
        let sql = "SELECT month, COUNT(*) FROM flights GROUP BY month";
        let Outcome::Continue(before) = s.handle(sql) else {
            panic!()
        };
        let Outcome::Continue(out) = s.handle("\\ingest flights NY,02 NY,01") else {
            panic!()
        };
        assert!(out.contains("ingested 2 rows into flights"), "{out}");
        assert!(out.contains("sample now 6 rows"), "{out}");
        assert!(out.contains("generation 1"), "{out}");
        assert!(out.contains("1 cached answers dropped"), "{out}");
        // The grown sample answers differently: NY gained weight.
        let Outcome::Continue(after) = s.handle(sql) else {
            panic!()
        };
        assert_ne!(
            before.split("\n-- ").next(),
            after.split("\n-- ").next(),
            "ingest left the answer unchanged: {after}"
        );
        // Bad rows are typed errors and leave the model untouched.
        let Outcome::Continue(out) = s.handle("\\ingest flights TX") else {
            panic!()
        };
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("expected 2 values"), "{out}");
        let Outcome::Continue(out) = s.handle("\\ingest flights ZZ,01") else {
            panic!()
        };
        assert!(out.contains("unknown label 'ZZ'"), "{out}");
        let Outcome::Continue(stats) = s.handle("\\cache stats") else {
            panic!()
        };
        assert!(stats.contains("1 batches"), "{stats}");
        assert!(stats.contains("generation 1"), "{stats}");
        // Usage and missing-model paths.
        assert!(matches!(
            s.handle("\\ingest flights"),
            Outcome::Continue(ref m) if m.contains("usage")
        ));
        assert!(matches!(
            Session::new().handle("\\ingest flights NY,01"),
            Outcome::Continue(ref m) if m.contains("\\build")
        ));
    }

    #[test]
    fn connect_mode_runs_sql_on_the_server() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;
        use themis_data::{Attribute, Domain, Schema};
        use themis_serve::{ServerConfig, ThemisServer};

        let schema = Schema::new(vec![
            Attribute::new("a", Domain::indexed("a", 4)),
            Attribute::new("b", Domain::indexed("b", 3)),
        ]);
        let mut pop = Relation::new(schema);
        for i in 0..400usize {
            pop.push_row(&[(i % 4) as u32, ((i / 4) % 3) as u32]);
        }
        let aggregates = AggregateSet::from_results(vec![AggregateResult::compute(
            &pop,
            &[AttrId(0)],
        )]);
        let rows: Vec<usize> = (0..pop.len()).step_by(4).collect();
        let sample = pop.select_rows(&rows);
        let world = Arc::new(ThemisSession::new(Themis::build(
            sample,
            aggregates,
            pop.len() as f64,
            ThemisConfig::default(),
        )));
        let server =
            ThemisServer::bind("127.0.0.1:0", world, ServerConfig::default()).expect("bind");
        let handle = server.handle();
        let addr = server.local_addr().to_string();
        let results = rayon::Pool::new(2)
            .try_par_indexed(2, |task| {
                if task == 0 {
                    server.serve().map_err(|e| format!("serve failed: {e}"))
                } else {
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        let mut s = Session::new();
                        let Outcome::Continue(out) = s.handle(&format!("\\connect {addr}"))
                        else {
                            panic!("connect")
                        };
                        assert!(out.contains("connected to"), "{out}");
                        // SQL travels the wire; the footer names the server.
                        let Outcome::Continue(out) =
                            s.handle("SELECT a, COUNT(*) AS n FROM t GROUP BY a")
                        else {
                            panic!("sql")
                        };
                        assert!(out.contains(&format!("ms on {addr}")), "{out}");
                        let Outcome::Continue(route) = s.handle("\\route") else {
                            panic!("route")
                        };
                        assert!(!route.contains("no query executed yet"), "{route}");
                        // Explain is answered by the server too.
                        let Outcome::Continue(out) =
                            s.handle("\\explain SELECT COUNT(*) AS n FROM t")
                        else {
                            panic!("explain")
                        };
                        assert!(out.contains("route:"), "{out}");
                        // Governance commands become per-connection `set`s.
                        let Outcome::Continue(out) = s.handle("\\budget rows 1") else {
                            panic!("budget")
                        };
                        assert!(out.contains("governance on"), "{out}");
                        let Outcome::Continue(out) = s.handle("SELECT COUNT(*) AS n FROM t")
                        else {
                            panic!("strict sql")
                        };
                        assert!(out.contains("row budget exceeded"), "{out}");
                        s.handle("\\budget off");
                        let Outcome::Continue(out) = s.handle("SELECT COUNT(*) AS n FROM t")
                        else {
                            panic!("recovered sql")
                        };
                        assert!(out.contains("-- "), "{out}");
                        // Server counters are one command away.
                        let Outcome::Continue(out) = s.handle("\\stats") else {
                            panic!("stats")
                        };
                        assert!(out.contains("\"queries\""), "{out}");
                        // …and so is the metrics registry export.
                        let Outcome::Continue(out) = s.handle("\\metrics") else {
                            panic!("metrics")
                        };
                        assert!(out.contains("\"server.queries\""), "{out}");
                        assert!(out.contains("\"server.query_latency_us\""), "{out}");
                        assert!(out.contains("\"p99_us\""), "{out}");
                        // `\ingest` travels the wire: the server's world
                        // moves to a new generation for every connection.
                        let Outcome::Continue(out) = s.handle("\\ingest t 1,2") else {
                            panic!("ingest")
                        };
                        assert!(out.contains("ingested 1 rows into t"), "{out}");
                        assert!(out.contains("generation 1"), "{out}");
                        let Outcome::Continue(out) = s.handle("\\ingest t 9,9") else {
                            panic!("bad ingest")
                        };
                        assert!(out.contains("unknown label '9'"), "{out}");
                        // `\cache stats` shows the server's live counters.
                        let Outcome::Continue(out) = s.handle("\\cache stats") else {
                            panic!("cache stats")
                        };
                        assert!(out.contains("\"batches\":1"), "{out}");
                        // `\trace on` travels as the `"trace":true` flag.
                        s.handle("\\trace on");
                        let Outcome::Continue(out) =
                            s.handle("SELECT a, COUNT(*) AS n FROM t GROUP BY a")
                        else {
                            panic!("traced sql")
                        };
                        assert!(out.contains("trace:"), "{out}");
                        assert!(out.contains("query ["), "{out}");
                        assert!(out.contains("rows_scanned="), "{out}");
                        s.handle("\\trace off");
                        let Outcome::Continue(out) = s.handle("\\disconnect") else {
                            panic!("disconnect")
                        };
                        assert!(out.contains("disconnected"), "{out}");
                        // Back on the local (unbuilt) model.
                        let Outcome::Continue(out) = s.handle("SELECT COUNT(*) AS n FROM t")
                        else {
                            panic!("local sql")
                        };
                        assert!(out.contains("\\build"), "{out}");
                    }));
                    handle.shutdown();
                    caught.map_err(|payload| {
                        payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "driver panicked".to_string())
                    })
                }
            })
            .expect("orchestration pool");
        for r in results {
            if let Err(message) = r {
                panic!("{message}");
            }
        }
    }

    #[test]
    fn connect_usage_and_disconnect_without_connection() {
        let mut s = Session::new();
        assert!(matches!(
            s.handle("\\connect"),
            Outcome::Continue(ref m) if m.contains("usage")
        ));
        assert!(matches!(
            s.handle("\\disconnect"),
            Outcome::Continue(ref m) if m.contains("not connected")
        ));
        assert!(matches!(
            s.handle("\\stats"),
            Outcome::Continue(ref m) if m.contains("not connected")
        ));
        assert!(matches!(
            s.handle("\\metrics"),
            Outcome::Continue(ref m) if m.contains("not connected")
        ));
    }

    #[test]
    fn bad_specs_are_reported() {
        let mut s = Session::new();
        let out = s.handle("\\load t nowhere.csv cat,banana");
        assert!(matches!(out, Outcome::Continue(ref m) if m.contains("bad column spec")));
    }
}
