//! The bounded, sharded answer cache.
//!
//! Values are stored as `Arc<T>` — a hit hands back the *same* allocation
//! the populating run produced, so a cached answer is bit-identical to a
//! fresh execution by construction. The cache never transforms what it
//! stores.
//!
//! ## Determinism
//!
//! Everything observable about the cache is deterministic for a fixed
//! request sequence (the wire goldens pin hit/miss/evict counts):
//!
//! * shard selection uses FNV-1a over the fingerprint key, not the standard
//!   library's unspecified default hasher;
//! * eviction picks the minimum `(epoch, key)` pair, so the scan over a
//!   shard's `HashMap` cannot leak iteration order into *which* entry is
//!   evicted — a total order breaks every tie.
//!
//! Iteration order never reaches a result either way: the only values that
//! leave the cache are `Arc<T>` clones fetched by exact key.

use crate::fingerprint::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::sync::Arc;

/// Number of independently-locked shards. A power of two so the FNV hash
/// maps uniformly; small enough that `len()` stays cheap.
const SHARDS: usize = 8;

struct Entry<T> {
    value: Arc<T>,
    tables: Vec<String>,
    /// Last-access epoch: bumped on every hit, set on insert. The eviction
    /// victim is the minimum `(epoch, key)`.
    epoch: u64,
}

struct Shard<T> {
    entries: HashMap<String, Entry<T>>,
}

/// A bounded, sharded map from plan fingerprints to shared answers.
pub struct AnswerCache<T> {
    shards: Vec<Mutex<Shard<T>>>,
    shard_capacity: usize,
    epoch: AtomicU64,
}

impl<T> AnswerCache<T> {
    /// A cache holding at most `capacity` entries (rounded up to a
    /// multiple of the shard count; a zero capacity still holds one entry
    /// per shard — "disabled" is a caller-level concept).
    pub fn new(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(SHARDS).max(1);
        AnswerCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                    })
                })
                .collect(),
            shard_capacity,
            epoch: AtomicU64::new(0),
        }
    }

    /// Deterministic FNV-1a shard index for a key.
    fn shard(&self, key: &str) -> MutexGuard<'_, Shard<T>> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let idx = (h % SHARDS as u64) as usize;
        // Indexing is in-bounds by construction (idx < SHARDS == len);
        // poisoning is impossible to propagate usefully from a cache, so a
        // poisoned shard keeps serving its contents.
        self.shards[idx]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Look up a fingerprint and bump its access epoch (the execution
    /// path). Returns a clone of the stored `Arc`.
    pub fn get(&self, fp: &Fingerprint) -> Option<Arc<T>> {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard(fp.key());
        let entry = shard.entries.get_mut(fp.key())?;
        entry.epoch = epoch;
        Some(Arc::clone(&entry.value))
    }

    /// Is this fingerprint resident? Does *not* bump the epoch — the
    /// `explain` path observes without steering eviction.
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        self.shard(fp.key()).entries.contains_key(fp.key())
    }

    /// Insert (or replace) an entry, evicting the shard's least-recently
    /// used entry when full. Returns the number of entries evicted (0 or
    /// 1).
    pub fn insert(&self, fp: &Fingerprint, value: Arc<T>) -> usize {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard(fp.key());
        let mut evicted = 0;
        if !shard.entries.contains_key(fp.key()) && shard.entries.len() >= self.shard_capacity {
            // Deterministic victim: minimum (epoch, key). The total order
            // makes the choice independent of HashMap iteration order.
            let victim = shard
                .entries
                .iter()
                .min_by(|a, b| (a.1.epoch, a.0).cmp(&(b.1.epoch, b.0)))
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                shard.entries.remove(&k);
                evicted = 1;
            }
        }
        shard.entries.insert(
            fp.key().to_string(),
            Entry {
                value,
                tables: fp.tables().to_vec(),
                epoch,
            },
        );
        evicted
    }

    /// Drop every entry whose plan touches `table`; returns how many were
    /// dropped. Entries over other tables survive — this is the selective
    /// half of ingest invalidation (the generation in the fingerprint is
    /// the belt-and-braces half).
    pub fn invalidate_table(&self, table: &str) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let before = shard.entries.len();
            shard.entries.retain(|_, e| !e.tables.iter().any(|t| t == table));
            dropped += before - shard.entries.len();
        }
        dropped
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .entries
                    .len()
            })
            .sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for AnswerCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerCache")
            .field("entries", &self.len())
            .field("shard_capacity", &self.shard_capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::plan_fingerprint;
    use themis_query::Limits;
    use themis_sql::parse;

    fn fp(sql: &str) -> Fingerprint {
        plan_fingerprint(&parse(sql).expect(sql), &Limits::default(), 0)
    }

    fn fp_gen(sql: &str, generation: u64) -> Fingerprint {
        plan_fingerprint(&parse(sql).expect(sql), &Limits::default(), generation)
    }

    #[test]
    fn get_returns_the_same_allocation() {
        let cache: AnswerCache<String> = AnswerCache::new(16);
        let f = fp("SELECT COUNT(*) AS n FROM t");
        assert!(cache.get(&f).is_none());
        let value = Arc::new("answer".to_string());
        assert_eq!(cache.insert(&f, Arc::clone(&value)), 0);
        let hit = cache.get(&f).expect("resident");
        assert!(Arc::ptr_eq(&hit, &value), "hit must share the allocation");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_partitions_the_key_space() {
        let cache: AnswerCache<u32> = AnswerCache::new(16);
        let old = fp_gen("SELECT COUNT(*) AS n FROM t", 0);
        let new = fp_gen("SELECT COUNT(*) AS n FROM t", 1);
        cache.insert(&old, Arc::new(1));
        assert!(cache.get(&new).is_none(), "new generation must miss");
    }

    #[test]
    fn invalidation_is_selective_by_table() {
        let cache: AnswerCache<u32> = AnswerCache::new(16);
        let on_t = fp("SELECT COUNT(*) AS n FROM t");
        let on_u = fp("SELECT COUNT(*) AS n FROM u");
        cache.insert(&on_t, Arc::new(1));
        cache.insert(&on_u, Arc::new(2));
        assert_eq!(cache.invalidate_table("t"), 1);
        assert!(cache.get(&on_t).is_none(), "t entries dropped");
        assert!(cache.get(&on_u).is_some(), "u entries survive");
        assert_eq!(cache.invalidate_table("nope"), 0);
    }

    #[test]
    fn eviction_is_lru_by_epoch_with_deterministic_ties() {
        // Capacity 0 rounds up to one entry per shard, so two keys landing
        // in the same shard force an eviction; run enough keys that every
        // shard sees pressure and verify the most-recently-touched key per
        // shard survives.
        let cache: AnswerCache<u32> = AnswerCache::new(0);
        let a = fp("SELECT COUNT(*) AS n FROM t LIMIT 1");
        let b = fp("SELECT COUNT(*) AS n FROM t LIMIT 2");
        cache.insert(&a, Arc::new(1));
        let evicted: usize = (0..1).map(|_| cache.insert(&b, Arc::new(2))).sum();
        if evicted == 1 {
            // Same shard: a was LRU, so b survives alone.
            assert!(cache.get(&a).is_none());
            assert!(cache.get(&b).is_some());
        } else {
            // Different shards: both resident.
            assert!(cache.get(&a).is_some());
            assert!(cache.get(&b).is_some());
        }
    }

    #[test]
    fn contains_does_not_bump_the_epoch() {
        let cache: AnswerCache<u32> = AnswerCache::new(16);
        let f = fp("SELECT COUNT(*) AS n FROM t");
        cache.insert(&f, Arc::new(7));
        let before = cache.epoch.load(Ordering::Relaxed);
        assert!(cache.contains(&f));
        assert_eq!(cache.epoch.load(Ordering::Relaxed), before);
    }
}
