//! # themis-live
//!
//! The live-data subsystem: everything Themis needs to serve queries while
//! the underlying sample *moves*. Two cooperating halves:
//!
//! * [`cache`] — a bounded, sharded [`AnswerCache`] keyed on a canonical
//!   **plan fingerprint** ([`fingerprint`]). The fingerprint covers the
//!   normalized SQL plan, the [`themis_query::Limits`] that can change an
//!   answer, and the world *generation* — and deliberately excludes
//!   `threads` / `morsel_rows`, which the differential suites prove
//!   answer-invariant. Eviction is LRU-ish by access epoch with a
//!   deterministic `(epoch, key)` tie-break, so a fixed request sequence
//!   always produces the same hit/miss/evict counts (the wire goldens pin
//!   them).
//!
//! * [`ingest`] — the data-plane helpers behind
//!   `ThemisSession::ingest`: growing a relation by appended rows
//!   (label-validated against the schema), and deciding whether an ingest
//!   actually *moved* the learned BN parameters (replicates are
//!   re-simulated only when it did). The incremental-marginal half lives in
//!   `themis_aggregates::IncidenceMatrix::extend`, which this crate's
//!   ingest path drives.
//!
//! [`stats`] holds the [`LiveStats`] metrics bundle (hit/miss/evict/
//! invalidate counters, ingest counters, generation gauge) registered in a
//! `themis_obs::MetricsRegistry` so servers can export them next to their
//! own counters.
//!
//! Nothing in this crate reads the environment, panics, or deep-clones a
//! `Relation` outside a constructor; cached values are shared as
//! `Arc<T>` and handed back bit-identical to the run that populated them.

#![forbid(unsafe_code)]

pub mod cache;
pub mod fingerprint;
pub mod ingest;
pub mod stats;

pub use cache::AnswerCache;
pub use fingerprint::{plan_fingerprint, Fingerprint};
pub use ingest::{bn_parameters_moved, grow_relation, IngestError};
pub use stats::{LiveSnapshot, LiveStats};
