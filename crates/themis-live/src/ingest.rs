//! Data-plane helpers for streaming ingest.
//!
//! `ThemisSession::ingest` (in `themis-core`) orchestrates the full
//! pipeline — reweight, relearn, swap. The pieces that don't need the
//! session live here: validating and appending labeled rows to a
//! [`Relation`], and deciding whether a rebuilt Bayesian network actually
//! *moved* relative to the old one (the gate on replicate re-simulation).

use themis_bn::BayesianNetwork;
use themis_data::{AttrId, Relation};

/// Why an ingest batch was rejected. The whole batch is validated before
/// any row is appended, so a failed ingest leaves the world untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// A row's value count doesn't match the schema arity.
    Arity {
        /// Zero-based index of the offending row within the batch.
        row: usize,
        /// Schema arity.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value is not a label of its column's domain (the open-world model
    /// is closed per-domain: ingest grows rows, not domains).
    UnknownLabel {
        /// Zero-based index of the offending row within the batch.
        row: usize,
        /// Attribute name.
        column: String,
        /// The unrecognized label.
        label: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Arity { row, expected, got } => write!(
                f,
                "ingest row {row}: expected {expected} values, got {got}"
            ),
            IngestError::UnknownLabel { row, column, label } => write!(
                f,
                "ingest row {row}: unknown label '{label}' for column {column}"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// Encode `rows` (label strings, schema order) against `base`'s schema.
/// All-or-nothing: the first bad row fails the whole batch.
pub fn encode_rows(base: &Relation, rows: &[Vec<String>]) -> Result<Vec<Vec<u32>>, IngestError> {
    let schema = base.schema();
    let arity = schema.arity();
    let mut encoded = Vec::with_capacity(rows.len());
    for (row_idx, row) in rows.iter().enumerate() {
        if row.len() != arity {
            return Err(IngestError::Arity {
                row: row_idx,
                expected: arity,
                got: row.len(),
            });
        }
        let mut ids = Vec::with_capacity(arity);
        for (col, label) in row.iter().enumerate() {
            let domain = schema.domain(AttrId(col));
            match domain.id_of(label) {
                Some(id) => ids.push(id),
                None => {
                    return Err(IngestError::UnknownLabel {
                        row: row_idx,
                        column: domain.name().to_string(),
                        label: label.clone(),
                    })
                }
            }
        }
        encoded.push(ids);
    }
    Ok(encoded)
}

/// A new relation holding `base`'s rows followed by `rows` (validated
/// against the schema). Existing row order is preserved exactly — the
/// incremental-marginal path depends on appended rows having strictly
/// larger indices than every existing row. Weights on the result are
/// uniform 1.0 placeholders; the caller recomputes and
/// [`Relation::set_weights`]s them.
pub fn grow_relation(base: &Relation, rows: &[Vec<String>]) -> Result<Relation, IngestError> {
    let encoded = encode_rows(base, rows)?;
    let indices: Vec<usize> = (0..base.len()).collect();
    let mut grown = base.select_rows(&indices);
    for ids in &encoded {
        grown.push_row(ids);
    }
    Ok(grown)
}

/// Did the learned parameters move between `old` and `new`? Replicates are
/// simulated *from* the BN, so if nothing moved the old replicates are
/// byte-for-byte what a re-simulation would produce and can be carried
/// over unchanged.
///
/// "Moved" means: BN appeared or disappeared, the structure (parent sets)
/// changed, or any CPT differs. CPTs are compared exactly (`f64` equality)
/// because the relearn is deterministic — an unchanged weighted sample
/// reproduces bit-identical tables, and anything else must invalidate.
pub fn bn_parameters_moved(old: Option<&BayesianNetwork>, new: Option<&BayesianNetwork>) -> bool {
    match (old, new) {
        (None, None) => false,
        (Some(a), Some(b)) => {
            if a.arity() != b.arity() {
                return true;
            }
            (0..a.arity()).any(|i| {
                let node = AttrId(i);
                a.parents(node) != b.parents(node) || a.cpt(node) != b.cpt(node)
            })
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use themis_bn::Cpt;
    use themis_data::{Attribute, Domain, Relation, Schema};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Attribute::new("a", Domain::of("a", &["x", "y"])),
            Attribute::new("b", Domain::of("b", &["p", "q", "r"])),
        ])
    }

    fn base() -> Relation {
        let mut rel = Relation::new(schema());
        rel.push_row_labels(&["x", "p"]);
        rel.push_row_labels(&["y", "q"]);
        rel
    }

    #[test]
    fn grow_appends_in_order_with_unit_weights() {
        let rel = base();
        let grown = grow_relation(
            &rel,
            &[vec!["y".into(), "r".into()], vec!["x".into(), "q".into()]],
        )
        .expect("valid batch");
        assert_eq!(grown.len(), 4);
        assert_eq!(grown.row(0), rel.row(0));
        assert_eq!(grown.row(1), rel.row(1));
        assert_eq!(grown.row(2), vec![1, 2]);
        assert_eq!(grown.row(3), vec![0, 1]);
        assert!(grown.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn bad_rows_fail_the_whole_batch() {
        let rel = base();
        let arity = grow_relation(&rel, &[vec!["x".into()]]).err();
        assert_eq!(
            arity,
            Some(IngestError::Arity {
                row: 0,
                expected: 2,
                got: 1
            })
        );
        let label = grow_relation(
            &rel,
            &[
                vec!["x".into(), "p".into()],
                vec!["x".into(), "nope".into()],
            ],
        )
        .err();
        assert_eq!(
            label,
            Some(IngestError::UnknownLabel {
                row: 1,
                column: "b".into(),
                label: "nope".into()
            })
        );
    }

    #[test]
    fn empty_batch_reproduces_the_base() {
        let rel = base();
        let grown = grow_relation(&rel, &[]).expect("empty batch is valid");
        assert_eq!(grown.len(), rel.len());
        for i in 0..rel.len() {
            assert_eq!(grown.row(i), rel.row(i));
        }
    }

    #[test]
    fn parameters_moved_detects_structure_and_cpt_changes() {
        let s = schema();
        let disconnected = BayesianNetwork::disconnected(Arc::clone(&s));
        let same = BayesianNetwork::disconnected(Arc::clone(&s));
        assert!(!bn_parameters_moved(Some(&disconnected), Some(&same)));
        assert!(!bn_parameters_moved(None, None));
        assert!(bn_parameters_moved(None, Some(&disconnected)));
        assert!(bn_parameters_moved(Some(&disconnected), None));

        // Edge a -> b: structure change.
        let chained = BayesianNetwork::new(
            Arc::clone(&s),
            vec![vec![], vec![AttrId(0)]],
            vec![Cpt::uniform(2, vec![]), Cpt::uniform(3, vec![2])],
        );
        assert!(bn_parameters_moved(Some(&disconnected), Some(&chained)));

        // Same structure, one CPT entry nudged: parameter change.
        let mut nudged = BayesianNetwork::disconnected(Arc::clone(&s));
        nudged.cpt_mut(AttrId(0)).table[0] = 0.75;
        nudged.cpt_mut(AttrId(0)).table[1] = 0.25;
        assert!(bn_parameters_moved(Some(&disconnected), Some(&nudged)));
    }
}
