//! Canonical plan fingerprints — the cache key.
//!
//! A fingerprint must satisfy one contract: **two queries share a
//! fingerprint only if their answers are bit-identical on the same
//! world generation.** It therefore covers:
//!
//! * the parsed plan, rendered canonically from the AST (keyword case and
//!   whitespace are gone after parsing; conjunctive WHERE predicates are
//!   sorted, since a conjunction is order-independent over the same row
//!   masks);
//! * the [`Limits`] in force — a row/group budget or deadline changes
//!   which answers are *possible*, so differently-governed connections
//!   never share entries;
//! * the world `generation`, bumped by every ingest — a stale entry can
//!   never be served even before invalidation drops it.
//!
//! It deliberately excludes `threads` and `morsel_rows`: the differential
//! suites (`tests/exec_differential.rs`, `tests/session_differential.rs`)
//! prove answers bit-identical across those knobs, so keying on them would
//! only shred the hit rate. Fault plans, cancel tokens, and enabled trace
//! sinks are not fingerprinted at all — they *bypass* the cache entirely
//! (see `ThemisSession`).

use std::fmt::Write as _;
use themis_query::Limits;
use themis_sql::{Predicate, Query, SelectItem};

/// A canonical cache key plus the tables the plan touches (for selective
/// invalidation on ingest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    key: String,
    tables: Vec<String>,
}

impl Fingerprint {
    /// The canonical key string.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Sorted, deduplicated catalog names of the FROM tables.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// Does this plan read `table`? Ingesting into `table` must drop every
    /// entry for which this is true.
    pub fn touches(&self, table: &str) -> bool {
        self.tables.iter().any(|t| t == table)
    }
}

/// Build the fingerprint for a parsed query under the given limits and
/// world generation.
pub fn plan_fingerprint(query: &Query, limits: &Limits, generation: u64) -> Fingerprint {
    let mut key = String::with_capacity(96);
    key.push_str("plan:");
    render_query(&mut key, query);
    key.push_str("|limits:");
    render_limits(&mut key, limits);
    let _ = write!(key, "|gen:{generation}");

    let mut tables: Vec<String> = query.from.iter().map(|t| t.name.clone()).collect();
    tables.sort();
    tables.dedup();
    Fingerprint { key, tables }
}

fn render_query(out: &mut String, q: &Query) {
    out.push_str("SELECT ");
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match item {
            SelectItem::Column(c) => {
                let _ = write!(out, "{c}");
            }
            SelectItem::Aggregate { func, arg, alias } => {
                out.push_str(func.name());
                out.push('(');
                match arg {
                    Some(c) => {
                        let _ = write!(out, "{c}");
                    }
                    None => out.push('*'),
                }
                out.push(')');
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    out.push_str(" FROM ");
    for (i, t) in q.from.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.name);
        if let Some(a) = &t.alias {
            let _ = write!(out, " {a}");
        }
    }
    // A conjunction is order-independent: every predicate masks rows and
    // the masks intersect, so sorting the rendered conjuncts makes
    // `WHERE a='1' AND b='2'` and `WHERE b='2' AND a='1'` one plan.
    let mut preds: Vec<String> = q.predicates.iter().map(render_predicate).collect();
    preds.sort();
    if !preds.is_empty() {
        out.push_str(" WHERE ");
        out.push_str(&preds.join(" AND "));
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, c) in q.group_by.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
    }
    if let Some(ob) = &q.order_by {
        let _ = write!(out, " ORDER BY {}", ob.column);
        if ob.desc {
            out.push_str(" DESC");
        }
    }
    if let Some(n) = q.limit {
        let _ = write!(out, " LIMIT {n}");
    }
}

fn render_predicate(p: &Predicate) -> String {
    match p {
        Predicate::Compare { col, op, value } => {
            let op = match op {
                themis_sql::Comparison::Eq => "=",
                themis_sql::Comparison::Ne => "<>",
                themis_sql::Comparison::Lt => "<",
                themis_sql::Comparison::Le => "<=",
                themis_sql::Comparison::Gt => ">",
                themis_sql::Comparison::Ge => ">=",
            };
            format!("{col} {op} {value}")
        }
        Predicate::In { col, values } => {
            // IN-list membership is set semantics; sort the rendered
            // literals so permuted lists share a plan.
            let mut vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            vals.sort();
            format!("{col} IN ({})", vals.join(","))
        }
        Predicate::JoinEq { left, right } => format!("{left} = {right}"),
    }
}

fn render_limits(out: &mut String, limits: &Limits) {
    match limits.deadline {
        Some(d) => {
            let _ = write!(out, "d={}", themis_obs::saturating_micros(d));
        }
        None => out.push_str("d=-"),
    }
    match limits.max_rows {
        Some(r) => {
            let _ = write!(out, ",r={r}");
        }
        None => out.push_str(",r=-"),
    }
    match limits.max_groups {
        Some(g) => {
            let _ = write!(out, ",g={g}");
        }
        None => out.push_str(",g=-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use themis_sql::parse;

    fn fp(sql: &str) -> Fingerprint {
        plan_fingerprint(&parse(sql).expect(sql), &Limits::default(), 0)
    }

    #[test]
    fn textual_noise_does_not_change_the_key() {
        let a = fp("SELECT COUNT(*) AS n FROM t WHERE a = '1' AND b = '2'");
        let b = fp("select   count(*) as n from t where b='2' and a='1'");
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn semantic_differences_change_the_key() {
        let base = fp("SELECT COUNT(*) AS n FROM t");
        for other in [
            "SELECT COUNT(*) AS m FROM t",
            "SELECT COUNT(*) AS n FROM t WHERE a = '1'",
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a",
            "SELECT COUNT(*) AS n FROM t LIMIT 1",
            "SELECT SUM(a) AS n FROM t",
        ] {
            assert_ne!(base.key(), fp(other).key(), "{other}");
        }
    }

    #[test]
    fn in_lists_are_set_semantics() {
        let a = fp("SELECT COUNT(*) AS n FROM t WHERE a IN ('1', '2')");
        let b = fp("SELECT COUNT(*) AS n FROM t WHERE a IN ('2', '1')");
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn limits_and_generation_are_in_the_key() {
        let q = parse("SELECT COUNT(*) AS n FROM t").expect("parse");
        let unlimited = plan_fingerprint(&q, &Limits::default(), 0);
        let budgeted = Limits {
            max_rows: Some(3),
            ..Limits::default()
        };
        assert_ne!(unlimited.key(), plan_fingerprint(&q, &budgeted, 0).key());
        let deadlined = Limits {
            deadline: Some(Duration::from_millis(50)),
            ..Limits::default()
        };
        assert_ne!(unlimited.key(), plan_fingerprint(&q, &deadlined, 0).key());
        assert_ne!(
            unlimited.key(),
            plan_fingerprint(&q, &Limits::default(), 1).key()
        );
    }

    #[test]
    fn tables_are_sorted_and_deduped() {
        let f = fp("SELECT COUNT(*) AS n FROM t x, t y WHERE x.a = y.a");
        assert_eq!(f.tables(), ["t"]);
        assert!(f.touches("t"));
        assert!(!f.touches("u"));
    }

    #[test]
    fn threads_and_morsel_rows_have_no_representation() {
        // The key renders plan + limits + generation only; engine shape
        // knobs cannot appear because they are never passed in.
        let f = fp("SELECT COUNT(*) AS n FROM t");
        assert!(!f.key().contains("thread"));
        assert!(!f.key().contains("morsel"));
    }
}
