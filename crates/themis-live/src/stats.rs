//! Live-data metrics: one [`LiveStats`] bundle per session.
//!
//! All counters live in a dedicated `themis_obs::MetricsRegistry` under
//! the `live.` prefix, so a server can merge them into its own `metrics`
//! export (both exports are name-sorted; the merge stays deterministic).
//! Handles are hoisted `Arc`s — the hot paths never touch the registry
//! mutex.

use std::sync::Arc;
use themis_obs::{Counter, Gauge, MetricValue, MetricsRegistry};

/// Metric handles for the answer cache and ingest path.
#[derive(Debug)]
pub struct LiveStats {
    registry: MetricsRegistry,
    /// Cache lookups served from a resident entry.
    pub cache_hits: Arc<Counter>,
    /// Cache lookups that missed and fell through to execution.
    pub cache_misses: Arc<Counter>,
    /// Queries that skipped the cache entirely (trace / fault / cancel).
    pub cache_bypasses: Arc<Counter>,
    /// Entries evicted by capacity pressure.
    pub cache_evictions: Arc<Counter>,
    /// Entries dropped by ingest invalidation.
    pub cache_invalidations: Arc<Counter>,
    /// Resident cache entries.
    pub cache_entries: Arc<Gauge>,
    /// Ingest batches applied.
    pub ingest_batches: Arc<Counter>,
    /// Rows appended across all batches.
    pub ingest_rows: Arc<Counter>,
    /// BN replicates re-simulated because parameters moved.
    pub replicates_resimulated: Arc<Counter>,
    /// BN replicates carried over because parameters did not move.
    pub replicates_kept: Arc<Counter>,
    /// Current world generation (0 = as built).
    pub generation: Arc<Gauge>,
}

impl Default for LiveStats {
    fn default() -> Self {
        LiveStats::new()
    }
}

impl LiveStats {
    /// A fresh zeroed bundle with every metric registered.
    pub fn new() -> LiveStats {
        let registry = MetricsRegistry::new();
        let cache_hits = registry.counter("live.cache.hits");
        let cache_misses = registry.counter("live.cache.misses");
        let cache_bypasses = registry.counter("live.cache.bypasses");
        let cache_evictions = registry.counter("live.cache.evictions");
        let cache_invalidations = registry.counter("live.cache.invalidations");
        let cache_entries = registry.gauge("live.cache.entries");
        let ingest_batches = registry.counter("live.ingest.batches");
        let ingest_rows = registry.counter("live.ingest.rows");
        let replicates_resimulated = registry.counter("live.ingest.replicates_resimulated");
        let replicates_kept = registry.counter("live.ingest.replicates_kept");
        let generation = registry.gauge("live.world.generation");
        LiveStats {
            registry,
            cache_hits,
            cache_misses,
            cache_bypasses,
            cache_evictions,
            cache_invalidations,
            cache_entries,
            ingest_batches,
            ingest_rows,
            replicates_resimulated,
            replicates_kept,
            generation,
        }
    }

    /// Snapshot every counter and gauge at once.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_bypasses: self.cache_bypasses.get(),
            cache_evictions: self.cache_evictions.get(),
            cache_invalidations: self.cache_invalidations.get(),
            cache_entries: self.cache_entries.get(),
            ingest_batches: self.ingest_batches.get(),
            ingest_rows: self.ingest_rows.get(),
            replicates_resimulated: self.replicates_resimulated.get(),
            replicates_kept: self.replicates_kept.get(),
            generation: self.generation.get(),
        }
    }

    /// The `live.*` metrics, name-sorted (delegates to the registry).
    pub fn export(&self) -> Vec<(String, MetricValue)> {
        self.registry.export()
    }
}

/// A point-in-time copy of every live metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveSnapshot {
    /// Cache lookups served from a resident entry.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Queries that skipped the cache entirely.
    pub cache_bypasses: u64,
    /// Entries evicted by capacity pressure.
    pub cache_evictions: u64,
    /// Entries dropped by ingest invalidation.
    pub cache_invalidations: u64,
    /// Resident cache entries.
    pub cache_entries: u64,
    /// Ingest batches applied.
    pub ingest_batches: u64,
    /// Rows appended across all batches.
    pub ingest_rows: u64,
    /// Replicates re-simulated.
    pub replicates_resimulated: u64,
    /// Replicates carried over.
    pub replicates_kept: u64,
    /// Current world generation.
    pub generation: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_tracks_handles() {
        let stats = LiveStats::new();
        assert_eq!(stats.snapshot(), LiveSnapshot::default());
        stats.cache_hits.add(3);
        stats.cache_misses.inc();
        stats.cache_entries.set(2);
        stats.ingest_batches.inc();
        stats.ingest_rows.add(10);
        stats.generation.set(1);
        let snap = stats.snapshot();
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_entries, 2);
        assert_eq!(snap.ingest_batches, 1);
        assert_eq!(snap.ingest_rows, 10);
        assert_eq!(snap.generation, 1);
    }

    #[test]
    fn export_is_name_sorted_and_complete() {
        let stats = LiveStats::new();
        let export = stats.export();
        let names: Vec<&str> = export.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 11);
        assert!(names.contains(&"live.cache.hits"));
        assert!(names.contains(&"live.world.generation"));
    }
}
