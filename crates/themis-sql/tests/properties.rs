//! Property-based parser tests: no panics on arbitrary input, and
//! structured round-trips for generated queries.

use proptest::prelude::*;
use themis_sql::{parse, Comparison, Literal, Predicate, SelectItem};

proptest! {
    /// The parser must never panic, whatever the input.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input);
    }

    /// ...including on inputs that lex fine.
    #[test]
    fn parser_never_panics_on_tokenish_input(
        words in prop::collection::vec("(SELECT|FROM|WHERE|GROUP|BY|AND|IN|AS|COUNT|SUM|AVG|[a-z]{1,6}|[0-9]{1,3}|'[a-z]{0,4}'|\\(|\\)|,|\\*|=|<|<=|>=|<>)", 0..25),
    ) {
        let input = words.join(" ");
        let _ = parse(&input);
    }

    /// Generated well-formed queries parse to the expected structure.
    #[test]
    fn well_formed_queries_round_trip(
        table in "[a-z]{1,8}",
        col in "[a-z]{1,8}",
        group in "[a-z]{1,8}",
        num in 0i32..1000,
        sval in "[A-Z]{1,4}",
    ) {
        let sql = format!(
            "SELECT {group}, COUNT(*) FROM {table} WHERE {col} <= {num} AND {col} = '{sval}' GROUP BY {group}"
        );
        let q = parse(&sql).unwrap();
        prop_assert_eq!(&q.from[0].name, &table);
        prop_assert_eq!(q.select.len(), 2);
        let is_agg = matches!(&q.select[1], SelectItem::Aggregate { .. });
        prop_assert!(is_agg);
        prop_assert_eq!(q.predicates.len(), 2);
        match &q.predicates[0] {
            Predicate::Compare { col: c, op, value } => {
                prop_assert_eq!(&c.column, &col);
                prop_assert_eq!(*op, Comparison::Le);
                prop_assert_eq!(value, &Literal::Num(num as f64));
            }
            other => prop_assert!(false, "unexpected predicate {other:?}"),
        }
        match &q.predicates[1] {
            Predicate::Compare { value, .. } => {
                prop_assert_eq!(value, &Literal::Str(sval.clone()));
            }
            other => prop_assert!(false, "unexpected predicate {other:?}"),
        }
        prop_assert_eq!(q.group_by.len(), 1);
    }

    /// IN lists of any size parse with all values preserved.
    #[test]
    fn in_lists_round_trip(values in prop::collection::vec("[A-Z]{1,3}", 1..8)) {
        let list = values
            .iter()
            .map(|v| format!("'{v}'"))
            .collect::<Vec<_>>()
            .join(", ");
        let sql = format!("SELECT COUNT(*) FROM t WHERE c IN ({list})");
        let q = parse(&sql).unwrap();
        match &q.predicates[0] {
            Predicate::In { values: parsed, .. } => {
                prop_assert_eq!(parsed.len(), values.len());
                for (p, v) in parsed.iter().zip(&values) {
                    prop_assert_eq!(p, &Literal::Str(v.clone()));
                }
            }
            other => prop_assert!(false, "unexpected predicate {other:?}"),
        }
    }
}
