//! Tokenizer for the Themis SQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by the
    /// parser; the original spelling is preserved here).
    Ident(String),
    /// Single-quoted string literal, quotes stripped.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Num(n) => write!(f, "{n}"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Dot => write!(f, "."),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset in the input.
    pub position: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an input string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            _ if c.is_ascii_digit()
                || (c == '-' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()) =>
            {
                let start = i;
                i += 1; // consume digit or leading minus
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.')
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| LexError {
                    position: start,
                    message: format!("invalid number {text:?}"),
                })?;
                tokens.push(Token::Num(n));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            _ => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {c:?}"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_query() {
        let toks = tokenize("SELECT COUNT(*) FROM f WHERE a <= 30 AND b = 'CA';").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("COUNT".into()));
        assert_eq!(toks[2], Token::LParen);
        assert_eq!(toks[3], Token::Star);
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Num(30.0)));
        assert!(toks.contains(&Token::Str("CA".into())));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn operators_lex_distinctly() {
        let toks = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn qualified_names_and_negative_numbers() {
        let toks = tokenize("t.DE -3.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("DE".into()),
                Token::Num(-3.5)
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn bad_character_errors_with_position() {
        let err = tokenize("SELECT #").unwrap_err();
        assert_eq!(err.position, 7);
    }
}
