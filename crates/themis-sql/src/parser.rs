//! Recursive-descent parser for the Themis SQL subset.

use crate::ast::{
    AggFunc, ColumnRef, Comparison, Literal, OrderBy, Predicate, Query, SelectItem, TableRef,
};
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_optional(&Token::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("trailing tokens starting at {}", p.peek_desc())));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "end of input".into())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {expected}, found {}", self.peek_desc()))),
        }
    }

    fn eat_optional(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a keyword (case-insensitive identifier).
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {kw}, found {}", self.peek_desc()))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end".into())
            ))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword("SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.eat_optional(&Token::Comma) {
            select.push(self.select_item()?);
        }

        self.keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.eat_optional(&Token::Comma) {
            from.push(self.table_ref()?);
        }
        if from.len() > 2 {
            return Err(self.err("at most two tables (one self-join) are supported"));
        }

        let mut predicates = Vec::new();
        if self.peek_keyword("WHERE") {
            self.keyword("WHERE")?;
            predicates.push(self.predicate()?);
            while self.peek_keyword("AND") {
                self.keyword("AND")?;
                predicates.push(self.predicate()?);
            }
        }

        let mut group_by = Vec::new();
        if self.peek_keyword("GROUP") {
            self.keyword("GROUP")?;
            self.keyword("BY")?;
            group_by.push(self.column_ref()?);
            while self.eat_optional(&Token::Comma) {
                group_by.push(self.column_ref()?);
            }
        }

        let order_by = if self.peek_keyword("ORDER") {
            self.keyword("ORDER")?;
            self.keyword("BY")?;
            let column = self.order_key()?;
            let desc = if self.peek_keyword("DESC") {
                self.keyword("DESC")?;
                true
            } else {
                if self.peek_keyword("ASC") {
                    self.keyword("ASC")?;
                }
                false
            };
            Some(OrderBy { column, desc })
        } else {
            None
        };

        let limit = if self.peek_keyword("LIMIT") {
            self.keyword("LIMIT")?;
            match self.next() {
                Some(Token::Num(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => {
                    return Err(self.err(format!(
                        "LIMIT expects a non-negative integer, found {}",
                        other.map(|t| t.to_string()).unwrap_or_else(|| "end".into())
                    )))
                }
            }
        } else {
            None
        };

        Ok(Query {
            select,
            from,
            predicates,
            group_by,
            order_by,
            limit,
        })
    }

    /// An ORDER BY key is an output-column name: a bare or qualified column
    /// (rendered like `t.DE`) or an aggregate spelling like `COUNT(*)`.
    fn order_key(&mut self) -> Result<String, ParseError> {
        // Aggregate spelling: IDENT '(' ... ')'.
        if let (Some(Token::Ident(name)), Some(Token::LParen)) =
            (self.peek().cloned(), self.tokens.get(self.pos + 1).cloned())
        {
            let upper = name.to_ascii_uppercase();
            if matches!(upper.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") {
                self.pos += 2;
                let inner = if self.eat_optional(&Token::Star) {
                    "*".to_string()
                } else {
                    self.column_ref()?.to_string()
                };
                self.eat(&Token::RParen)?;
                return Ok(format!("{upper}({inner})"));
            }
        }
        Ok(self.column_ref()?.to_string())
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        // Aggregate functions look like IDENT '('.
        if let Some(Token::Ident(name)) = self.peek() {
            let func = match name.to_ascii_uppercase().as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2; // consume name and '('
                    let arg = if self.eat_optional(&Token::Star) {
                        if func != AggFunc::Count {
                            return Err(self.err("'*' argument is only valid for COUNT"));
                        }
                        None
                    } else {
                        Some(self.column_ref()?)
                    };
                    self.eat(&Token::RParen)?;
                    let alias = if self.peek_keyword("AS") {
                        self.keyword("AS")?;
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    return Ok(SelectItem::Aggregate { func, arg, alias });
                }
            }
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        // An alias is a following identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if !["WHERE", "GROUP", "AS", "ORDER", "LIMIT"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw)) =>
            {
                Some(self.ident()?)
            }
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if self.eat_optional(&Token::Dot) {
            let column = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let col = self.column_ref()?;
        if self.peek_keyword("IN") {
            self.keyword("IN")?;
            self.eat(&Token::LParen)?;
            let mut values = vec![self.literal()?];
            while self.eat_optional(&Token::Comma) {
                values.push(self.literal()?);
            }
            self.eat(&Token::RParen)?;
            return Ok(Predicate::In { col, values });
        }
        let op = match self.next() {
            Some(Token::Eq) => Comparison::Eq,
            Some(Token::Ne) => Comparison::Ne,
            Some(Token::Lt) => Comparison::Lt,
            Some(Token::Le) => Comparison::Le,
            Some(Token::Gt) => Comparison::Gt,
            Some(Token::Ge) => Comparison::Ge,
            other => {
                return Err(self.err(format!(
                    "expected comparison operator, found {}",
                    other.map(|t| t.to_string()).unwrap_or_else(|| "end".into())
                )))
            }
        };
        // Equality against another column is a join condition.
        if op == Comparison::Eq {
            if let Some(Token::Ident(_)) = self.peek() {
                let right = self.column_ref()?;
                return Ok(Predicate::JoinEq { left: col, right });
            }
        }
        let value = self.literal()?;
        Ok(Predicate::Compare { col, op, value })
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Num(n)) => Ok(Literal::Num(n)),
            other => Err(self.err(format!(
                "expected literal, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_motivating_query() {
        // §2: SELECT SUM(weight) AS num_flights FROM flights
        //     WHERE flight_time <= 30 AND origin_state = '<state>';
        let q = parse(
            "SELECT SUM(weight) AS num_flights FROM flights \
             WHERE flight_time <= 30 AND origin_state = 'CA';",
        )
        .unwrap();
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].name, "flights");
        assert_eq!(q.select.len(), 1);
        assert!(matches!(
            &q.select[0],
            SelectItem::Aggregate { func: AggFunc::Sum, arg: Some(c), alias: Some(a) }
                if c.column == "weight" && a == "num_flights"
        ));
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn parses_group_by_count() {
        let q = parse("SELECT O, COUNT(*) FROM F WHERE E < 120 GROUP BY O").unwrap();
        assert_eq!(q.group_by, vec![ColumnRef::bare("O")]);
        assert!(matches!(
            &q.select[1],
            SelectItem::Aggregate { func: AggFunc::Count, arg: None, alias: None }
        ));
    }

    #[test]
    fn parses_table_5_join_query() {
        // Q6 of Table 5 (with the paper's typos fixed).
        let q = parse(
            "SELECT t.O, s.DE, COUNT(*) FROM F t, F s \
             WHERE t.DE = s.O AND t.DE IN ('CO', 'WY') GROUP BY t.O, s.DE",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].binding(), "t");
        assert_eq!(q.from[1].binding(), "s");
        assert!(matches!(
            &q.predicates[0],
            Predicate::JoinEq { left, right }
                if left.to_string() == "t.DE" && right.to_string() == "s.O"
        ));
        assert!(matches!(
            &q.predicates[1],
            Predicate::In { col, values }
                if col.to_string() == "t.DE" && values.len() == 2
        ));
    }

    #[test]
    fn parses_avg_queries() {
        let q = parse("SELECT O, AVG(E) FROM F GROUP BY O").unwrap();
        assert!(matches!(
            &q.select[1],
            SelectItem::Aggregate { func: AggFunc::Avg, arg: Some(c), .. } if c.column == "E"
        ));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let a = parse("select O, count(*) from F group by O").unwrap();
        let b = parse("SELECT O, COUNT(*) FROM F GROUP BY O").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_three_way_joins() {
        let err = parse("SELECT COUNT(*) FROM a, b, c").unwrap_err();
        assert!(err.message.contains("two tables"));
    }

    #[test]
    fn rejects_star_outside_count() {
        let err = parse("SELECT AVG(*) FROM f").unwrap_err();
        assert!(err.message.contains("only valid for COUNT"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("SELECT COUNT(*) FROM f GROUP BY x y z").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn order_by_and_limit_parse() {
        let q = parse(
            "SELECT O, COUNT(*) AS n FROM F GROUP BY O ORDER BY n DESC LIMIT 5",
        )
        .unwrap();
        let ob = q.order_by.unwrap();
        assert_eq!(ob.column, "n");
        assert!(ob.desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn order_by_aggregate_spelling_parses() {
        let q = parse("SELECT O, COUNT(*) FROM F GROUP BY O ORDER BY COUNT(*)").unwrap();
        let ob = q.order_by.unwrap();
        assert_eq!(ob.column, "COUNT(*)");
        assert!(!ob.desc);
        let q = parse("SELECT O, AVG(E) FROM F GROUP BY O ORDER BY AVG(E) ASC").unwrap();
        assert_eq!(q.order_by.unwrap().column, "AVG(E)");
    }

    #[test]
    fn limit_requires_integer() {
        assert!(parse("SELECT COUNT(*) FROM F LIMIT 2.5").is_err());
        assert!(parse("SELECT COUNT(*) FROM F LIMIT x").is_err());
        assert_eq!(parse("SELECT COUNT(*) FROM F LIMIT 0").unwrap().limit, Some(0));
    }

    #[test]
    fn numeric_comparisons_parse() {
        let q = parse("SELECT COUNT(*) FROM f WHERE a >= 2 AND b <> 3").unwrap();
        assert!(matches!(
            &q.predicates[0],
            Predicate::Compare { op: Comparison::Ge, value: Literal::Num(n), .. } if *n == 2.0
        ));
        assert!(matches!(
            &q.predicates[1],
            Predicate::Compare { op: Comparison::Ne, .. }
        ));
    }
}
