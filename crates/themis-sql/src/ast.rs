//! Abstract syntax for the Themis SQL subset.

use std::fmt;

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Quoted string — matched against domain labels.
    Str(String),
    /// Numeric literal — compared against numeric labels or bucket ids.
    Num(f64),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Num(n) => write!(f, "{n}"),
        }
    }
}

/// A (possibly table-qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias, if qualified (`t.DE`).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column.
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — evaluated as `SUM(weight)` over open-world relations.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)` — weighted mean.
    Avg,
    /// `MIN(col)` — smallest value with positive weight.
    Min,
    /// `MAX(col)` — largest value with positive weight.
    Max,
}

impl AggFunc {
    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column (must also appear in GROUP BY).
    Column(ColumnRef),
    /// An aggregate, optionally aliased.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Argument column; `None` for `COUNT(*)`.
        arg: Option<ColumnRef>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col OP literal`.
    Compare {
        /// Column being tested.
        col: ColumnRef,
        /// Operator.
        op: Comparison,
        /// Literal to compare against.
        value: Literal,
    },
    /// `col IN (lit, ...)`.
    In {
        /// Column being tested.
        col: ColumnRef,
        /// Allowed values.
        values: Vec<Literal>,
    },
    /// `left = right` across tables — an equi-join condition.
    JoinEq {
        /// Left column.
        left: ColumnRef,
        /// Right column.
        right: ColumnRef,
    },
}

/// A table in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name predicates should use to refer to this table.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An ORDER BY key: the *output* column it names (a group column's display
/// name or an aggregate's alias/display name).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Output column name.
    pub column: String,
    /// Descending order (`DESC`).
    pub desc: bool,
}

/// A parsed query: `SELECT items FROM tables [WHERE conjuncts]
/// [GROUP BY cols] [ORDER BY col [DESC]] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM tables (1 = scan, 2 = self-join).
    pub from: Vec<TableRef>,
    /// Conjunctive WHERE predicates.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// Optional ORDER BY key.
    pub order_by: Option<OrderBy>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        assert_eq!(Literal::Str("CA".into()).to_string(), "'CA'");
        assert_eq!(Literal::Num(3.5).to_string(), "3.5");
        let c = ColumnRef {
            table: Some("t".into()),
            column: "DE".into(),
        };
        assert_eq!(c.to_string(), "t.DE");
        assert_eq!(ColumnRef::bare("O").to_string(), "O");
    }

    #[test]
    fn table_binding_prefers_alias() {
        let t = TableRef {
            name: "flights".into(),
            alias: Some("f".into()),
        };
        assert_eq!(t.binding(), "f");
        let t = TableRef {
            name: "flights".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "flights");
    }
}
