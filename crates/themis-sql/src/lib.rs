//! # themis-sql
//!
//! A small SQL parser covering the query class Themis evaluates (§2, §6.4,
//! Table 5): single-table aggregate queries with conjunctive predicates and
//! `GROUP BY`, plus equi-self-joins:
//!
//! ```sql
//! SELECT origin_state, SUM(weight) AS num_flights
//! FROM flights
//! WHERE elapsed_time <= 30 AND origin_state = 'CA'
//! GROUP BY origin_state;
//!
//! SELECT t.O, s.DE, COUNT(*) FROM F t, F s
//! WHERE t.DE = s.O AND t.DE IN ('CO', 'WY') GROUP BY t.O, s.DE;
//! ```
//!
//! The parser is a classic hand-written lexer + recursive-descent pair and
//! has no knowledge of schemas; name resolution happens in `themis-query`.

#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    AggFunc, ColumnRef, Comparison, Literal, OrderBy, Predicate, Query, SelectItem, TableRef,
};
pub use parser::{parse, ParseError};
