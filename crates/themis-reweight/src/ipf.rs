//! Iterative Proportional Fitting (§4.1.2, Alg. 1).
//!
//! IPF treats every tuple weight as an independent parameter. It sweeps over
//! the aggregate constraints (rows of `G^{0/1}`); whenever a constraint is
//! unsatisfied, the weights of exactly the tuples participating in it are
//! rescaled so it becomes satisfied. If a satisfying scaling exists, the
//! sweep converges to it; if not (e.g. the sample is missing support for
//! some groups, Example 4.2), it oscillates and we return the approximate
//! weights from the final sweep, which still answer in-sample queries well
//! (§6.7).

use themis_aggregates::{AggregateSet, IncidenceMatrix};
use themis_data::Relation;

/// Options for IPF.
#[derive(Debug, Clone)]
pub struct IpfOptions {
    /// Maximum full sweeps over the constraints (`maxIter` in Alg. 1).
    pub max_iterations: usize,
    /// Convergence threshold on the maximum relative constraint violation.
    pub tolerance: f64,
}

impl Default for IpfOptions {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tolerance: 1e-6,
        }
    }
}

/// Convergence report.
#[derive(Debug, Clone, PartialEq)]
pub struct IpfReport {
    /// Sweeps performed.
    pub iterations: usize,
    /// Final maximum relative violation over supported constraints.
    pub final_violation: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Run IPF and return the learned weights.
///
/// # Panics
/// Panics if the sample is empty.
pub fn ipf_weights(
    sample: &Relation,
    aggregates: &AggregateSet,
    options: &IpfOptions,
) -> (Vec<f64>, IpfReport) {
    assert!(!sample.is_empty(), "cannot reweight an empty sample");
    let incidence = IncidenceMatrix::build(sample, aggregates);
    ipf_on_incidence(&incidence, sample.len(), options)
}

/// IPF over a prebuilt incidence matrix (exposed so callers that already
/// built `G^{0/1}` — e.g. the bench harness timing Table 8 — can skip the
/// rebuild).
pub fn ipf_on_incidence(
    incidence: &IncidenceMatrix,
    n_sample: usize,
    options: &IpfOptions,
) -> (Vec<f64>, IpfReport) {
    let mut w = vec![1.0f64; n_sample];
    let mut iterations = 0;
    let mut violation = incidence.max_relative_violation(&w);

    while violation > options.tolerance && iterations < options.max_iterations {
        for row in incidence.rows() {
            if row.sample_rows.is_empty() {
                continue;
            }
            let dot: f64 = row.sample_rows.iter().map(|&c| w[c as usize]).sum();
            if dot <= 0.0 {
                // All participating weights collapsed to zero; nothing to
                // rescale multiplicatively.
                continue;
            }
            if (dot - row.target).abs() > f64::EPSILON * row.target.max(1.0) {
                let s = row.target / dot;
                for &c in &row.sample_rows {
                    w[c as usize] *= s;
                }
            }
        }
        iterations += 1;
        violation = incidence.max_relative_violation(&w);
    }

    (
        w,
        IpfReport {
            iterations,
            final_violation: violation,
            converged: violation <= options.tolerance,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_aggregates::AggregateResult;
    use themis_data::paper_example::{example_population, example_sample};
    use themis_data::AttrId;

    fn example_aggregates() -> AggregateSet {
        let p = example_population();
        AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ])
    }

    /// Trace the first sweep of Example 4.2 step by step.
    #[test]
    fn example_4_2_first_sweep() {
        let s = example_sample();
        let incidence = IncidenceMatrix::build(&s, &example_aggregates());
        let mut w = [1.0f64; 4];

        // j = 1: date = 01, rows {0,1,3}, target 5, dot 3 → scale 5/3.
        let row = &incidence.rows()[0];
        let dot: f64 = row.sample_rows.iter().map(|&c| w[c as usize]).sum();
        let s1 = row.target / dot;
        for &c in &row.sample_rows {
            w[c as usize] *= s1;
        }
        assert!((w[0] - 5.0 / 3.0).abs() < 1e-12);
        assert!((w[1] - 5.0 / 3.0).abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12);
        assert!((w[3] - 5.0 / 3.0).abs() < 1e-12);

        // j = 2: date = 02, row {2}, target 5 → w[2] = 5.
        let row = &incidence.rows()[1];
        let dot: f64 = row.sample_rows.iter().map(|&c| w[c as usize]).sum();
        for &c in &row.sample_rows {
            w[c as usize] *= row.target / dot;
        }
        assert!((w[2] - 5.0).abs() < 1e-12);
    }

    /// After one full sweep the weights must match the paper's final column
    /// [1, 1, 3, 1].
    #[test]
    fn example_4_2_full_sweep_matches_paper() {
        let s = example_sample();
        let opts = IpfOptions {
            max_iterations: 1,
            tolerance: 1e-12,
        };
        let (w, rep) = ipf_weights(&s, &example_aggregates(), &opts);
        assert_eq!(rep.iterations, 1);
        assert!((w[0] - 1.0).abs() < 1e-9, "{w:?}");
        assert!((w[1] - 1.0).abs() < 1e-9, "{w:?}");
        assert!((w[2] - 3.0).abs() < 1e-9, "{w:?}");
        assert!((w[3] - 1.0).abs() < 1e-9, "{w:?}");
    }

    /// Example 4.2's sample lacks FL-bound support, so IPF must not
    /// converge.
    #[test]
    fn example_4_2_does_not_converge() {
        let s = example_sample();
        let (_, rep) = ipf_weights(&s, &example_aggregates(), &IpfOptions::default());
        assert!(!rep.converged);
        assert!(rep.final_violation > 0.1);
    }

    /// When a feasible scaling exists IPF finds it.
    #[test]
    fn converges_on_feasible_problem() {
        let p = example_population();
        // The full population trivially satisfies its own aggregates.
        let (w, rep) = ipf_weights(&p, &example_aggregates(), &IpfOptions::default());
        assert!(rep.converged, "{rep:?}");
        assert!(rep.iterations <= 2);
        for &wi in &w {
            assert!((wi - 1.0).abs() < 1e-9);
        }
    }

    /// Single 1-D aggregate: IPF reduces to direct post-stratification.
    #[test]
    fn single_aggregate_is_post_stratification() {
        let p = example_population();
        let s = example_sample();
        let set = AggregateSet::from_results(vec![AggregateResult::compute(&p, &[AttrId(0)])]);
        let (w, rep) = ipf_weights(&s, &set, &IpfOptions::default());
        assert!(rep.converged);
        // date=01: 3 sample rows, population 5 → weight 5/3 each.
        assert!((w[0] - 5.0 / 3.0).abs() < 1e-9);
        assert!((w[3] - 5.0 / 3.0).abs() < 1e-9);
        // date=02: 1 sample row, population 5 → weight 5.
        assert!((w[2] - 5.0).abs() < 1e-9);
    }

    /// Weighted point queries after IPF match the population for supported
    /// in-sample tuples (the §6.7 claim).
    #[test]
    fn in_sample_queries_improve() {
        let p = example_population();
        let mut s = example_sample();
        let (w, _) = ipf_weights(&s, &example_aggregates(), &IpfOptions::default());
        s.set_weights(w);
        // NC→NY has true count 3; the reweighted sample should be close.
        let est = s.point_count(&[AttrId(1), AttrId(2)], &[1, 2]);
        let truth = p.point_count(&[AttrId(1), AttrId(2)], &[1, 2]);
        assert!((est - truth).abs() < 0.75, "est {est} vs truth {truth}");
    }
}
