//! One-hot encoding of sample tuples over the aggregate-covered attributes.
//!
//! §4.1.1: for linear-regression reweighting a tuple `t` is represented by
//! its one-hot encoding `t^{0/1}` over the `m` attributes covered by the
//! aggregates, prefixed by a constant-1 intercept column, for a total width
//! of `m^{0/1} = Σ_i N_i + 1`.

use themis_data::{AttrId, Relation};

/// Column layout of the one-hot encoding: intercept at column 0, then one
/// block of `N_i` columns per covered attribute.
#[derive(Debug, Clone)]
pub struct OneHotLayout {
    attrs: Vec<AttrId>,
    /// Starting column of each attribute's block (after the intercept).
    offsets: Vec<usize>,
    width: usize,
}

impl OneHotLayout {
    /// Build the layout for the given covered attributes of a relation's
    /// schema.
    pub fn new(relation: &Relation, attrs: &[AttrId]) -> Self {
        let mut offsets = Vec::with_capacity(attrs.len());
        let mut col = 1; // column 0 is the intercept
        for &a in attrs {
            offsets.push(col);
            col += relation.schema().domain(a).size();
        }
        Self {
            attrs: attrs.to_vec(),
            offsets,
            width: col,
        }
    }

    /// Total width `m^{0/1} = Σ_i N_i + 1`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The covered attributes in block order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Write the one-hot encoding of `row` into `out` (length
    /// [`Self::width`]), including the intercept 1.
    pub fn encode_into(&self, relation: &Relation, row: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.width);
        out.fill(0.0);
        // themis-lint: allow(no-panic-in-libs) reason=width always counts the intercept, so slot 0 exists (debug_assert above)
        out[0] = 1.0;
        for (&a, &off) in self.attrs.iter().zip(&self.offsets) {
            out[off + relation.value(row, a) as usize] = 1.0;
        }
    }

    /// One-hot encode a single row into a fresh vector.
    pub fn encode(&self, relation: &Relation, row: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.width];
        self.encode_into(relation, row, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_data::paper_example::example_sample;

    #[test]
    fn matches_example_4_1() {
        // Example 4.1's X_S: width 1 + 2 + 3 + 3 = 9; first sample row
        // (01, FL, FL) encodes as [1, 1,0, 1,0,0, 1,0,0].
        let s = example_sample();
        let attrs: Vec<AttrId> = s.schema().attr_ids().collect();
        let layout = OneHotLayout::new(&s, &attrs);
        assert_eq!(layout.width(), 9);
        assert_eq!(
            layout.encode(&s, 0),
            vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0]
        );
        // Third row (02, NC, NY): [1, 0,1, 0,1,0, 0,0,1].
        assert_eq!(
            layout.encode(&s, 2),
            vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]
        );
    }

    #[test]
    fn partial_coverage_shrinks_width() {
        let s = example_sample();
        let layout = OneHotLayout::new(&s, &[AttrId(1)]);
        assert_eq!(layout.width(), 4); // intercept + 3 origin states
        assert_eq!(layout.encode(&s, 3), vec![1.0, 0.0, 0.0, 1.0]); // NY
    }

    #[test]
    fn every_encoding_has_one_hot_per_block() {
        let s = example_sample();
        let attrs: Vec<AttrId> = s.schema().attr_ids().collect();
        let layout = OneHotLayout::new(&s, &attrs);
        for r in 0..s.len() {
            let e = layout.encode(&s, r);
            let total: f64 = e.iter().sum();
            assert_eq!(total, 1.0 + attrs.len() as f64);
        }
    }
}
