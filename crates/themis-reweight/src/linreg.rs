//! Linear-regression reweighting (§4.1.1).
//!
//! Assumes `w(t) = β · t^{0/1}` for a non-negative coefficient vector β over
//! the one-hot encoding of the aggregate-covered attributes. The system
//! `[G^{0/1} X_S] β = y` is solved as constrained (non-negative) least
//! squares; an extra row `[n_S, 0, …, 0]` with target `n_S` is appended to
//! push the intercept positive so every tuple receives some weight; finally
//! the learned weights are sum-normalized to the population size `n`.

use crate::onehot::OneHotLayout;
use themis_aggregates::{AggregateSet, IncidenceMatrix};
use themis_data::Relation;
use themis_solver::matrix::DenseMatrix;
use themis_solver::nnls::{nnls, NnlsReport};

/// Options for linear-regression reweighting.
#[derive(Debug, Clone)]
pub struct LinRegOptions {
    /// Whether to constrain β ≥ 0 (the paper's formulation). Setting this to
    /// false gives the unconstrained ablation of DESIGN.md §5.3, which can
    /// produce negative weights.
    pub nonnegative: bool,
    /// Whether to append the `[n_S, 0, …, 0]` intercept-encouraging row.
    pub intercept_row: bool,
}

impl Default for LinRegOptions {
    fn default() -> Self {
        Self {
            nonnegative: true,
            intercept_row: true,
        }
    }
}

/// Fit report.
#[derive(Debug, Clone)]
pub struct LinRegReport {
    /// Number of all-zero rows of `G^{0/1} X_S` dropped (aggregate groups
    /// with no support in the sample).
    pub dropped_rows: usize,
    /// β vector (one-hot width, intercept first).
    pub beta: Vec<f64>,
    /// NNLS convergence info (`None` for the unconstrained ablation).
    pub nnls: Option<NnlsReport>,
}

/// Learn weights by constrained linear regression and sum-normalize them to
/// `population_size`.
///
/// # Panics
/// Panics if the sample is empty or no aggregate covers any attribute.
pub fn linreg_weights(
    sample: &Relation,
    aggregates: &AggregateSet,
    population_size: f64,
    options: &LinRegOptions,
) -> (Vec<f64>, LinRegReport) {
    assert!(!sample.is_empty(), "cannot reweight an empty sample");
    let covered = aggregates.covered_attrs();
    assert!(
        !covered.is_empty(),
        "aggregates must cover at least one attribute"
    );

    let layout = OneHotLayout::new(sample, &covered);
    let incidence = IncidenceMatrix::build(sample, aggregates);
    let supported = incidence.rows_with_support();
    let dropped = incidence.n_rows() - supported.len();
    let ns = sample.len();

    // X = G^{0/1} X_S restricted to supported rows: row r is the column sum
    // of the one-hot encodings of the sample rows in group r.
    let mut x = DenseMatrix::zeros(0, layout.width());
    let mut y = Vec::with_capacity(supported.len() + 1);
    let mut encoded = vec![0.0; layout.width()];
    let mut acc = vec![0.0; layout.width()];
    for &r in &supported {
        let row = &incidence.rows()[r];
        acc.fill(0.0);
        for &c in &row.sample_rows {
            layout.encode_into(sample, c as usize, &mut encoded);
            for (a, e) in acc.iter_mut().zip(&encoded) {
                *a += e;
            }
        }
        x.push_row(&acc);
        y.push(row.target);
    }

    // Intercept-encouraging row [n_S, 0, ..., 0] with target n_S.
    if options.intercept_row {
        acc.fill(0.0);
        // themis-lint: allow(no-panic-in-libs) reason=acc has the one-hot layout width, which always includes the intercept slot 0
        acc[0] = ns as f64;
        x.push_row(&acc);
        y.push(ns as f64);
    }

    let (beta, nnls_report) = if options.nonnegative {
        let (b, rep) = nnls(&x, &y);
        (b, Some(rep))
    } else {
        (themis_solver::lstsq(&x, &y), None)
    };

    // w(t) = β · t^{0/1}, then sum-normalize to n.
    let mut weights = Vec::with_capacity(ns);
    for r in 0..ns {
        layout.encode_into(sample, r, &mut encoded);
        weights.push(themis_solver::matrix::dot(&beta, &encoded));
    }
    let total: f64 = weights.iter().sum();
    if total > 0.0 {
        let scale = population_size / total;
        weights.iter_mut().for_each(|w| *w *= scale);
    } else {
        // Degenerate fit (all-zero β): fall back to uniform weights, which
        // is what sum-normalizing a constant vector would give.
        let u = population_size / ns as f64;
        weights.iter_mut().for_each(|w| *w = u);
    }

    (
        weights,
        LinRegReport {
            dropped_rows: dropped,
            beta,
            nnls: nnls_report,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_aggregates::AggregateResult;
    use themis_data::paper_example::{example_population, example_sample};
    use themis_data::AttrId;

    fn example_aggregates() -> AggregateSet {
        let p = example_population();
        AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ])
    }

    #[test]
    fn weights_are_nonnegative_and_normalized() {
        let s = example_sample();
        let (w, rep) = linreg_weights(&s, &example_aggregates(), 10.0, &LinRegOptions::default());
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|&x| x >= 0.0), "{w:?}");
        assert!((w.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        assert!(rep.beta.iter().all(|&b| b >= 0.0));
        // Example 4.1: 4 of the 9 aggregate rows have no sample support.
        assert_eq!(rep.dropped_rows, 4);
    }

    #[test]
    fn biased_sample_gets_debiased_toward_aggregates() {
        // date=02 is underrepresented in the sample (1 of 4 rows) but holds
        // half the population; its tuple must get more weight than each
        // date=01 tuple.
        let s = example_sample();
        let (w, _) = linreg_weights(&s, &example_aggregates(), 10.0, &LinRegOptions::default());
        let date02_weight = w[2];
        let date01_weight = w[0];
        assert!(
            date02_weight > date01_weight,
            "02 tuple {date02_weight} should outweigh 01 tuple {date01_weight}"
        );
    }

    #[test]
    fn unconstrained_ablation_can_go_negative() {
        // Not asserting it *must* be negative here — only that the option
        // runs and produces normalized weights.
        let s = example_sample();
        let opts = LinRegOptions {
            nonnegative: false,
            intercept_row: true,
        };
        let (w, rep) = linreg_weights(&s, &example_aggregates(), 10.0, &opts);
        assert!(rep.nnls.is_none());
        assert!((w.iter().sum::<f64>() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn single_aggregate_partial_coverage() {
        let p = example_population();
        let s = example_sample();
        let set = AggregateSet::from_results(vec![AggregateResult::compute(&p, &[AttrId(1)])]);
        let (w, _) = linreg_weights(&s, &set, 10.0, &LinRegOptions::default());
        assert!((w.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        // o_st marginals: FL 3, NC 4, NY 3. Sample has FL×2, NC×1, NY×1.
        // The NC tuple should carry more weight than either FL tuple.
        assert!(w[2] > w[0]);
    }

    #[test]
    fn uniform_sample_stays_near_uniform() {
        // A sample that already matches the aggregates should stay roughly
        // uniform: use the whole population as the "sample".
        let p = example_population();
        let (w, _) = linreg_weights(&p, &example_aggregates(), 10.0, &LinRegOptions::default());
        for &wi in &w {
            assert!((wi - 1.0).abs() < 0.35, "weight {wi} strays far from 1");
        }
    }
}
