//! # themis-reweight
//!
//! Sample reweighting for Themis (§4.1 of the paper). Each tuple `t` of the
//! biased sample `S` is assigned a weight `w(t)` — the number of population
//! tuples it represents — so that `COUNT(*)` queries over the population can
//! be answered as `SUM(weight)` over the sample. Three schemes:
//!
//! * [`uniform`] — the default AQP baseline: `w(t) = |P| / |S|` for every
//!   tuple. Accurate only for unbiased samples.
//! * [`linreg`] — constrained linear regression (§4.1.1): assumes
//!   `w(t) = β · t^{0/1}` is a linear function of the tuple's one-hot
//!   encoding, solves `[G^{0/1} X_S] β = y` with β ≥ 0 by non-negative least
//!   squares, encourages a positive intercept with an extra `[n_S, 0, …, 0]`
//!   row, and sum-normalizes the weights to the population size.
//! * [`ipf`] — Iterative Proportional Fitting (§4.1.2, Alg. 1): treats every
//!   `w(t)` as a free parameter and rescales the tuples participating in
//!   each unsatisfied aggregate until all constraints hold (or the iteration
//!   cap is reached — IPF need not converge when the sample is missing
//!   support, Example 4.2).

#![forbid(unsafe_code)]

pub mod ipf;
pub mod linreg;
pub mod onehot;
pub mod uniform;

pub use ipf::{ipf_on_incidence, ipf_weights, IpfOptions, IpfReport};
pub use linreg::{linreg_weights, LinRegOptions, LinRegReport};
pub use uniform::uniform_weights;
