//! Uniform reweighting: the default AQP baseline.

use themis_data::Relation;

/// Assign every tuple the weight `n / |S|` (§4.1: "the default approach used
/// by standard AQP systems is to perform uniform reweighting by setting
/// `w(t)` to be `|P| / |S|`").
///
/// # Panics
/// Panics if the sample is empty or `n` is not positive.
pub fn uniform_weights(sample: &Relation, population_size: f64) -> Vec<f64> {
    assert!(!sample.is_empty(), "cannot reweight an empty sample");
    assert!(population_size > 0.0, "population size must be positive");
    vec![population_size / sample.len() as f64; sample.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_data::paper_example::example_sample;

    #[test]
    fn weights_scale_to_population() {
        let s = example_sample();
        let w = uniform_weights(&s, 10.0);
        assert_eq!(w, vec![2.5; 4]);
        assert!((w.iter().sum::<f64>() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty_sample() {
        let s = themis_data::Relation::new(themis_data::paper_example::example_schema());
        uniform_weights(&s, 10.0);
    }
}
