//! Property-based tests for the reweighters.

use proptest::prelude::*;
use themis_aggregates::{AggregateResult, AggregateSet, IncidenceMatrix};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};
use themis_reweight::{ipf_weights, linreg_weights, IpfOptions, LinRegOptions};

fn relation_from_rows(rows: &[(u32, u32)]) -> Relation {
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", 3)),
        Attribute::new("b", Domain::indexed("b", 3)),
    ]);
    let mut rel = Relation::new(schema);
    for &(a, b) in rows {
        rel.push_row(&[a, b]);
    }
    rel
}

fn rows_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..3, 0u32..3), 3..40)
}

proptest! {
    /// When the constraint targets are generated from an actual positive
    /// weighting of the sample, a feasible scaling exists and IPF must
    /// converge to constraint satisfaction.
    #[test]
    fn ipf_converges_on_feasible_problems(
        rows in rows_strategy(),
        true_weights in prop::collection::vec(0.5f64..20.0, 40),
    ) {
        let mut sample = relation_from_rows(&rows);
        let w_star: Vec<f64> = (0..sample.len()).map(|i| true_weights[i % true_weights.len()]).collect();
        sample.set_weights(w_star);
        // Targets computed from the weighted sample — feasible by
        // construction.
        let aggs = AggregateSet::from_results(vec![
            AggregateResult::compute(&sample, &[AttrId(0)]),
            AggregateResult::compute(&sample, &[AttrId(1)]),
        ]);
        sample.fill_weights(1.0);
        // Feasible problems converge, but only asymptotically; give the
        // sweep loop plenty of room for ill-conditioned weightings.
        let opts = IpfOptions {
            max_iterations: 5_000,
            tolerance: 1e-6,
        };
        let (w, report) = ipf_weights(&sample, &aggs, &opts);
        prop_assert!(report.converged, "{report:?}");
        let inc = IncidenceMatrix::build(&sample, &aggs);
        prop_assert!(inc.max_relative_violation(&w) < 1e-5);
        prop_assert!(w.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    /// IPF over a sample that IS the population converges to unit weights.
    #[test]
    fn ipf_identity_on_population(rows in rows_strategy()) {
        let pop = relation_from_rows(&rows);
        let aggs = AggregateSet::from_results(vec![
            AggregateResult::compute(&pop, &[AttrId(0), AttrId(1)]),
        ]);
        let (w, report) = ipf_weights(&pop, &aggs, &IpfOptions::default());
        prop_assert!(report.converged);
        for &wi in &w {
            prop_assert!((wi - 1.0).abs() < 1e-9);
        }
    }

    /// LinReg weights are always non-negative and sum-normalized.
    #[test]
    fn linreg_weights_are_normalized_and_nonnegative(
        rows in rows_strategy(),
        n in 10.0f64..10_000.0,
    ) {
        let sample = relation_from_rows(&rows);
        let pop = relation_from_rows(&rows); // acts as its own population
        let aggs = AggregateSet::from_results(vec![
            AggregateResult::compute(&pop, &[AttrId(0)]),
            AggregateResult::compute(&pop, &[AttrId(1)]),
        ]);
        let (w, report) = linreg_weights(&sample, &aggs, n, &LinRegOptions::default());
        prop_assert!(w.iter().all(|&x| x >= -1e-12 && x.is_finite()));
        prop_assert!((w.iter().sum::<f64>() - n).abs() / n < 1e-6);
        prop_assert!(report.beta.iter().all(|&b| b >= 0.0));
    }

    /// Identical tuples always receive identical LinReg weights (w(t) is a
    /// function of the one-hot encoding only).
    #[test]
    fn linreg_weight_is_a_function_of_the_tuple(rows in rows_strategy()) {
        let sample = relation_from_rows(&rows);
        let aggs = AggregateSet::from_results(vec![
            AggregateResult::compute(&sample, &[AttrId(0)]),
        ]);
        let (w, _) = linreg_weights(&sample, &aggs, 100.0, &LinRegOptions::default());
        for i in 0..sample.len() {
            for j in (i + 1)..sample.len() {
                if sample.row(i) == sample.row(j) {
                    prop_assert!((w[i] - w[j]).abs() < 1e-9);
                }
            }
        }
    }
}
