//! Query routing (§4.3): decide which debiasing component answers a query,
//! and the single replicate-agreement merge every BN-backed answer path
//! shares.
//!
//! The paper's central claim is that neither debiasing technique dominates:
//! heavy hitters present in the sample are best answered by the reweighted
//! sample, tuples *missing* from the sample need Bayesian-network inference,
//! and open-world `GROUP BY` needs the union of both. This module makes
//! that decision explicit and observable: `decide` maps a parsed query to
//! a decision before anything executes (that is what
//! `ThemisSession::explain` surfaces), execution stamps the resulting
//! [`Route`] onto every [`crate::Answer`], and the three formerly duplicated
//! replicate-merge loops (`sql`, `sql_bn_only`, `group_by`) all funnel
//! through one `intersect_into` agreement step.

use crate::model::Themis;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;
use themis_bn::point_probability;
use themis_data::{AttrId, GroupKey, Relation};
use std::time::Instant;
use themis_query::{
    cmp_group_prefix, Catalog, EngineOptions, ExecError, FaultPlan, QueryResult, Trip, Value,
};
use themis_sql::{AggFunc, Comparison, Literal, Predicate, Query, SelectItem};

/// Which debiasing component answered (or would answer) a query, without
/// the per-execution detail carried by [`Route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// The reweighted sample (`COUNT(*)` ≡ `SUM(weight)`).
    Sample,
    /// The learned Bayesian network.
    BayesNet,
    /// Sample groups unioned with BN-replicate consensus groups.
    Hybrid,
}

impl fmt::Display for RouteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteKind::Sample => write!(f, "Sample"),
            RouteKind::BayesNet => write!(f, "BayesNet"),
            RouteKind::Hybrid => write!(f, "Hybrid"),
        }
    }
}

/// Why a BN-backed route fell back to its reweighted-sample part.
///
/// Degradation is the governance story for routed queries: when the BN
/// phase of a hybrid answer trips a limit or loses a worker, the sample
/// part — already computed, already debiased for everything the sample
/// covers — is returned instead of an error, and the reason is stamped on
/// the [`Route`] so callers can tell a complete open-world answer from a
/// best-effort one. Cancellation never degrades: a cancelled query means
/// *stop*, not *answer with less*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The BN phase exceeded the configured deadline.
    DeadlineExceeded,
    /// The BN phase exceeded the row budget.
    RowBudgetExceeded,
    /// The BN phase exceeded the group budget.
    GroupBudgetExceeded,
    /// A worker panicked during the BN phase (contained by the pool).
    WorkerFailure,
}

impl DegradeReason {
    /// The degradation a BN-phase error justifies, if any. Errors that are
    /// not governance trips or contained worker failures — planner errors,
    /// unknown columns — return `None` and must propagate: they would fail
    /// identically on the sample part, so hiding them behind a degraded
    /// answer would mask real bugs.
    pub(crate) fn from_error(err: &ExecError) -> Option<DegradeReason> {
        match err {
            ExecError::Governed(Trip::Deadline) => Some(DegradeReason::DeadlineExceeded),
            ExecError::Governed(Trip::RowBudget { .. }) => {
                Some(DegradeReason::RowBudgetExceeded)
            }
            ExecError::Governed(Trip::GroupBudget { .. }) => {
                Some(DegradeReason::GroupBudgetExceeded)
            }
            // Cancellation is a user decision to stop, never to degrade.
            ExecError::Governed(Trip::Cancelled) => None,
            ExecError::Internal(_) => Some(DegradeReason::WorkerFailure),
            _ => None,
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            DegradeReason::RowBudgetExceeded => write!(f, "row budget exceeded"),
            DegradeReason::GroupBudgetExceeded => write!(f, "group budget exceeded"),
            DegradeReason::WorkerFailure => write!(f, "worker failure"),
        }
    }
}

/// The provenance of an executed answer: which component produced it, with
/// the execution-time detail the paper reports (§4.2.4, §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Answered entirely by the reweighted sample.
    Sample,
    /// Answered by the Bayesian network. `k_agreed` is the number of
    /// forward-sample replicates whose agreement produced the answer; `0`
    /// means direct inference (`n · Pr(X = v)`), which uses the exact joint
    /// probability and no replicates.
    BayesNet {
        /// Replicates that had to agree (0 ⇒ direct inference).
        k_agreed: usize,
    },
    /// Open-world union: every group of the reweighted-sample answer, plus
    /// the BN-consensus groups the sample missed.
    Hybrid {
        /// Groups contributed by the reweighted sample.
        sample_groups: usize,
        /// Groups added from the BN replicate consensus.
        bn_groups_added: usize,
    },
    /// The planned BN-backed route hit a governance limit or worker failure
    /// in its BN phase; the answer is the reweighted-sample part alone.
    Degraded {
        /// The route the query was planned to take.
        planned: RouteKind,
        /// Why the BN phase was abandoned.
        reason: DegradeReason,
    },
}

impl Route {
    /// The route without its execution detail (what `explain` can predict
    /// before running the query). A degraded answer *is* a sample answer —
    /// that is what the caller received.
    pub fn kind(&self) -> RouteKind {
        match self {
            Route::Sample | Route::Degraded { .. } => RouteKind::Sample,
            Route::BayesNet { .. } => RouteKind::BayesNet,
            Route::Hybrid { .. } => RouteKind::Hybrid,
        }
    }

    /// The route the query was *planned* to take — differs from [`kind`]
    /// only for degraded answers.
    ///
    /// [`kind`]: Route::kind
    pub fn planned_kind(&self) -> RouteKind {
        match self {
            Route::Degraded { planned, .. } => *planned,
            other => other.kind(),
        }
    }

    /// Why this answer was degraded, or `None` for a complete answer.
    pub fn degraded(&self) -> Option<DegradeReason> {
        match self {
            Route::Degraded { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Route::Sample => write!(f, "Sample"),
            Route::BayesNet { k_agreed: 0 } => write!(f, "BayesNet (direct inference)"),
            Route::BayesNet { k_agreed } => {
                write!(f, "BayesNet ({k_agreed} replicates agreed)")
            }
            Route::Hybrid {
                sample_groups,
                bn_groups_added,
            } => write!(
                f,
                "Hybrid ({sample_groups} sample groups, {bn_groups_added} BN groups added)"
            ),
            Route::Degraded { planned, reason } => {
                write!(f, "Sample (degraded from {planned}: {reason})")
            }
        }
    }
}

/// The routing decision for a query, *without executing it* — returned by
/// `ThemisSession::explain`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explain {
    /// The route the query will take when executed.
    pub route: RouteKind,
    /// Human-readable justification of the decision.
    pub reason: String,
    /// Where the answer lands if the BN phase trips a configured limit or
    /// loses a worker: `Some(RouteKind::Sample)` for a BN-backed route under
    /// armed limits or an injected fault plan, `None` when nothing can
    /// degrade (no limits, or the route has no BN phase to abandon).
    pub degrades_to: Option<RouteKind>,
    /// Whether executing this query now would serve a resident answer-cache
    /// entry: `Some(true)` = cache hit, `Some(false)` = cache enabled but
    /// the fingerprint is not resident, `None` = no cache, or the query
    /// would bypass it (trace / fault plan / cancel token). Filled in by
    /// `ThemisSession::explain_with` from the *same* probe function
    /// execution uses, so explain and execution cannot disagree.
    pub cached: Option<bool>,
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "route: {} — {}", self.route, self.reason)?;
        if let Some(fallback) = self.degrades_to {
            write!(f, " (degrades to {fallback} if limits trip)")?;
        }
        if self.cached == Some(true) {
            write!(f, " [cached]")?;
        }
        Ok(())
    }
}

/// Internal routing decision, carrying what execution needs.
pub(crate) enum Decision {
    /// Run on the reweighted sample.
    Sample { reason: String },
    /// A point query about a tuple absent from the sample: answer by direct
    /// BN inference, `n · Pr(attrs = values)`.
    BnPoint {
        attrs: Vec<AttrId>,
        values: Vec<u32>,
        /// Output column name, mirroring what the engine would produce.
        column: String,
        reason: String,
    },
    /// Grouped query: sample answer unioned with BN replicate consensus.
    Hybrid { reason: String },
}

impl Decision {
    pub(crate) fn explain(&self, engine: &EngineOptions) -> Explain {
        let (route, reason) = match self {
            Decision::Sample { reason } => (RouteKind::Sample, reason),
            Decision::BnPoint { reason, .. } => (RouteKind::BayesNet, reason),
            Decision::Hybrid { reason } => (RouteKind::Hybrid, reason),
        };
        // Only the hybrid route has a BN *phase* that can be abandoned in
        // favour of an already-computed sample part. Direct BN inference
        // (BnPoint) runs no engine query, so no limit can trip it; and
        // cancellation stops rather than degrades, so an armed cancel token
        // alone predicts nothing.
        let armed = !engine.limits.is_unlimited() || engine.fault_plan != FaultPlan::None;
        let degrades_to = match route {
            RouteKind::Hybrid if armed => Some(RouteKind::Sample),
            _ => None,
        };
        Explain {
            route,
            reason: reason.clone(),
            degrades_to,
            // The decision function cannot see the session's cache; the
            // session fills this in (`None` stays for cache-off sessions).
            cached: None,
        }
    }
}

/// Whether the query produces grouped output (explicit `GROUP BY`, or the
/// paper's Table 5 shorthand of bare columns in the SELECT list).
fn is_grouped(query: &Query) -> bool {
    !query.group_by.is_empty()
        || query
            .select
            .iter()
            .any(|item| matches!(item, SelectItem::Column(_)))
}

/// A scalar count query pinned to one tuple: `SELECT COUNT(*) FROM t WHERE
/// a = 'x' AND b = 'y' ...` — the SQL spelling of the paper's point query.
struct PointShape {
    attrs: Vec<AttrId>,
    values: Vec<u32>,
    column: String,
}

/// Recognize a point-shaped query against the sample's schema. Returns
/// `None` for anything the point router should not touch (ranges, joins,
/// unknown labels, non-count aggregates, ...): those run on the sample, so
/// planner errors surface exactly as they would have.
fn point_shape(sample: &Relation, query: &Query) -> Option<PointShape> {
    if query.from.len() != 1
        || query.order_by.is_some()
        || query.limit.is_some()
        || !query.group_by.is_empty()
    {
        return None;
    }
    let schema = sample.schema();
    // Any table qualifier must name the single FROM binding; a stray
    // qualifier means the engine would reject the query, and the point
    // router must not answer SQL the engine rejects.
    let binding = query.from[0].binding();
    let qualifier_ok =
        |col: &themis_sql::ColumnRef| col.table.as_deref().is_none_or(|t| t == binding);
    // Exactly one aggregate, and it must be a (weighted) count.
    let [item] = &query.select[..] else {
        return None;
    };
    if let SelectItem::Aggregate { arg: Some(c), .. } = item {
        if !qualifier_ok(c) {
            return None;
        }
    }
    let column = match item {
        SelectItem::Aggregate {
            func: AggFunc::Count,
            arg,
            alias,
        } => alias.clone().unwrap_or_else(|| match arg {
            Some(c) => format!("{}({c})", AggFunc::Count.name()),
            None => format!("{}(*)", AggFunc::Count.name()),
        }),
        SelectItem::Aggregate {
            func: AggFunc::Sum,
            arg: Some(c),
            alias,
        } if c.column.eq_ignore_ascii_case("weight") && schema.attr_id(&c.column).is_none() => {
            alias
                .clone()
                .unwrap_or_else(|| format!("{}({c})", AggFunc::Sum.name()))
        }
        _ => return None,
    };
    // Every predicate must pin one distinct attribute to one in-domain
    // label. (A label outside the domain cannot be represented by the BN
    // either — the sample route answers 0 for it, which is correct.)
    let mut attrs = Vec::with_capacity(query.predicates.len());
    let mut values = Vec::with_capacity(query.predicates.len());
    for p in &query.predicates {
        let Predicate::Compare {
            col,
            op: Comparison::Eq,
            value: Literal::Str(s),
        } = p
        else {
            return None;
        };
        if !qualifier_ok(col) {
            return None;
        }
        let attr = schema.attr_id(&col.column)?;
        if attrs.contains(&attr) {
            return None;
        }
        let id = schema.domain(attr).id_of(s)?;
        attrs.push(attr);
        values.push(id);
    }
    if attrs.is_empty() {
        // A bare `SELECT COUNT(*)` is the total count — the reweighted
        // sample's Σ w(t) is the debiased answer.
        return None;
    }
    Some(PointShape {
        attrs,
        values,
        column,
    })
}

/// Route a parsed query (§4.3). This is pure decision logic — nothing
/// executes — so `ThemisSession::explain` and the execution path cannot
/// disagree: both call this exact function.
pub(crate) fn decide(model: &Themis, query: &Query) -> Decision {
    if model.bayesian_network().is_none() {
        return Decision::Sample {
            reason: "model has no Bayesian network; every query answers from the reweighted \
                     sample"
                .into(),
        };
    }
    if is_grouped(query) {
        return Decision::Hybrid {
            reason: format!(
                "grouped query: reweighted-sample groups unioned with groups agreed by all {} \
                 BN replicates",
                model.config().k_samples
            ),
        };
    }
    let sample = model.reweighted_sample();
    if let Some(point) = point_shape(sample, query) {
        let described: Vec<String> = point
            .attrs
            .iter()
            .zip(&point.values)
            .map(|(&a, &v)| {
                format!(
                    "{} = '{}'",
                    sample.schema().attr(a).name(),
                    sample.schema().domain(a).label(v)
                )
            })
            .collect();
        let described = described.join(", ");
        if sample.contains_point(&point.attrs, &point.values) {
            return Decision::Sample {
                reason: format!(
                    "point query ({described}) hits the sample; answered by SUM(weight)"
                ),
            };
        }
        return Decision::BnPoint {
            reason: format!(
                "point query ({described}) misses the sample; answered by n · Pr(...) from \
                 the Bayesian network"
            ),
            attrs: point.attrs,
            values: point.values,
            column: point.column,
        };
    }
    Decision::Sample {
        reason: "scalar aggregate (no grouping, not a single-tuple point query); answered \
                 from the reweighted sample"
            .into(),
    }
}

/// Bind every FROM table of `query` to `relation` — an `Arc` bump per
/// binding, never a data clone — and execute on the morsel engine.
pub(crate) fn run_on(
    relation: &Arc<Relation>,
    query: &Query,
    opts: &EngineOptions,
) -> Result<QueryResult, ExecError> {
    let mut catalog = Catalog::new();
    for table in &query.from {
        catalog.register(table.name.clone(), Arc::clone(relation));
    }
    themis_query::execute_parallel(&catalog, query, opts)
}

/// Draw the model's K forward-sample replicates (§4.2.4), each scaled to
/// the population size. Deterministic in the model's seed, so every call —
/// and every session — sees identical replicates.
pub(crate) fn simulate_replicates(model: &Themis) -> Vec<Arc<Relation>> {
    let Some(bn) = model.bayesian_network() else {
        return Vec::new();
    };
    let config = model.config();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let size = config
        .bn_sample_size
        .unwrap_or(model.reweighted_sample().len());
    themis_bn::sampling::forward_samples(
        bn,
        config.k_samples,
        size,
        model.population_size(),
        &mut rng,
    )
    .into_iter()
    .map(Arc::new)
    .collect()
}

/// The one replicate-agreement step behind every K-replicate answer (the
/// hybrid SQL union, BN-only SQL, and attribute-level `GROUP BY`): after
/// folding all K maps through this, a group survives only if present in
/// *every* replicate, with its values combined by `add`.
pub(crate) fn intersect_into<K: Eq + Hash, V>(
    acc: &mut Option<HashMap<K, V>>,
    next: HashMap<K, V>,
    mut add: impl FnMut(&mut V, V),
) {
    match acc {
        None => *acc = Some(next),
        Some(prev) => {
            prev.retain(|k, _| next.contains_key(k));
            for (k, v) in next {
                if let Some(slot) = prev.get_mut(&k) {
                    add(slot, v);
                }
            }
        }
    }
}

/// Groups agreed by all replicates for a SQL query, with per-aggregate
/// value *sums* (callers divide by K to average). Also hands back the first
/// replicate's result as a column/shape template. `None` when there are no
/// replicates.
struct Consensus {
    template: QueryResult,
    groups: HashMap<Vec<String>, Vec<f64>>,
}

fn replicate_consensus(
    replicates: &[Arc<Relation>],
    query: &Query,
    opts: &EngineOptions,
) -> Result<Option<Consensus>, ExecError> {
    // The engine's guard is re-armed per `run_on`, so its deadline bounds
    // one replicate at a time. This phase-level deadline bounds the *whole*
    // consensus loop: K nearly-on-budget replicates must not stretch a
    // 250ms deadline into K × 250ms.
    let phase_deadline = opts.limits.deadline.map(|d| Instant::now() + d);
    let mut template: Option<QueryResult> = None;
    let mut agreed: Option<HashMap<Vec<String>, Vec<f64>>> = None;
    for replicate in replicates {
        if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            return Err(Trip::Cancelled.into());
        }
        if phase_deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(Trip::Deadline.into());
        }
        // One child span per replicate (the loop is serial, so span
        // nesting stays well-formed at every thread count).
        let _span = opts.trace.span("replicate");
        let result = run_on(replicate, query, opts)?;
        let m = result.to_map();
        if template.is_none() {
            template = Some(result);
        }
        intersect_into(&mut agreed, m, |acc, vals| {
            for (a, v) in acc.iter_mut().zip(vals) {
                *a += v;
            }
        });
    }
    Ok(template.map(|template| Consensus {
        template,
        groups: agreed.unwrap_or_default(),
    }))
}

/// Turn a consensus group into an output row (labels, then K-averaged
/// aggregate values).
fn consensus_row(group: Vec<String>, sums: Vec<f64>, k: f64) -> Vec<Value> {
    let mut row: Vec<Value> = group.into_iter().map(Value::Str).collect();
    row.extend(sums.into_iter().map(|s| Value::Num(s / k)));
    row
}

/// The query with `ORDER BY` / `LIMIT` stripped: merge paths must union
/// *complete* group sets — truncating inputs first would both lose sample
/// groups (letting BN consensus values shadow real sample answers) and
/// make the consensus depend on per-replicate row ranking.
fn without_order_limit(query: &Query) -> Query {
    let mut inner = query.clone();
    inner.order_by = None;
    inner.limit = None;
    inner
}

/// Re-impose the *original* query's ordering on merged rows: sort by the
/// borrowed group prefix for determinism (consensus groups come out of a
/// hash map), then apply `ORDER BY` / `LIMIT` if the query had them.
fn finish_merged(result: &mut QueryResult, query: &Query) -> Result<(), ExecError> {
    let arity = result.group_arity;
    result.rows.sort_by(|a, b| cmp_group_prefix(a, b, arity));
    if let Some(order) = &query.order_by {
        themis_query::apply_order_by(result, order)?;
    }
    if let Some(limit) = query.limit {
        result.rows.truncate(limit);
    }
    Ok(())
}

/// Hybrid SQL (§4.3): the reweighted-sample answer, unioned with the
/// BN-consensus groups the sample missed. The union happens over the
/// *untruncated* group sets; `ORDER BY` / `LIMIT` apply to the merged
/// result, so a LIMIT ranks sample and BN groups together instead of
/// letting consensus values shadow sample groups the limit cut.
pub(crate) fn hybrid_sql(
    sample: &Arc<Relation>,
    query: &Query,
    opts: &EngineOptions,
    replicates: &[Arc<Relation>],
) -> Result<(QueryResult, Route), ExecError> {
    let trace = &opts.trace;
    let _hybrid_span = trace.span("hybrid");
    let inner = without_order_limit(query);
    let mut merged = {
        let _span = trace.span("execute:sample");
        run_on(sample, &inner, opts)?
    };
    let sample_groups = merged.rows.len();
    let mut bn_groups_added = 0;
    let consensus = {
        let _span = trace.span("consensus");
        replicate_consensus(replicates, &inner, opts)
    };
    match consensus {
        Ok(Some(consensus)) => {
            let _span = trace.span("merge");
            let existing: HashSet<Vec<String>> = merged.to_map().into_keys().collect();
            let k = replicates.len() as f64;
            // themis-lint: allow(deterministic-iteration) reason=finish_merged below sorts merged rows by group prefix before ORDER BY/LIMIT applies
            for (group, sums) in consensus.groups {
                if existing.contains(&group) {
                    continue;
                }
                merged.rows.push(consensus_row(group, sums, k));
                bn_groups_added += 1;
            }
            trace.add_counts(&[
                ("bn_groups_added", bn_groups_added as u64),
                ("sample_groups", sample_groups as u64),
            ]);
        }
        Ok(None) => {}
        // Graceful degradation: the sample part is already a debiased
        // answer for every group the sample covers. If the BN phase trips a
        // limit or loses a worker, return that part with the reason stamped
        // on the route instead of throwing the whole answer away.
        // Non-degradable errors (cancellation, planner errors) propagate.
        Err(err) => {
            let Some(reason) = DegradeReason::from_error(&err) else {
                return Err(err);
            };
            {
                let _span = trace.span("degrade");
                trace.note("fallback", "Sample");
                trace.note("reason", &reason.to_string());
            }
            finish_merged(&mut merged, query)?;
            return Ok((
                merged,
                Route::Degraded {
                    planned: RouteKind::Hybrid,
                    reason,
                },
            ));
        }
    }
    finish_merged(&mut merged, query)?;
    Ok((
        merged,
        Route::Hybrid {
            sample_groups,
            bn_groups_added,
        },
    ))
}

/// BN-only SQL (§4.2.4 generalized): the query runs on each replicate;
/// groups present in all of them are returned with averaged values, with
/// the query's `ORDER BY` / `LIMIT` applied to the merged result.
pub(crate) fn bn_only_sql(
    query: &Query,
    opts: &EngineOptions,
    replicates: &[Arc<Relation>],
) -> Result<QueryResult, ExecError> {
    let inner = without_order_limit(query);
    let Some(consensus) = replicate_consensus(replicates, &inner, opts)? else {
        return Err(ExecError::Unsupported(
            "k_samples = 0: no BN replicates to answer from".into(),
        ));
    };
    let k = replicates.len() as f64;
    let mut out = consensus.template;
    out.rows = consensus
        // themis-lint: allow(deterministic-iteration) reason=finish_merged below sorts rows by group prefix before ORDER BY/LIMIT applies
        .groups
        .into_iter()
        .map(|(group, sums)| consensus_row(group, sums, k))
        .collect();
    finish_merged(&mut out, query)?;
    Ok(out)
}

/// BN-consensus counts for an attribute-level `GROUP BY` (K-averaged), or
/// `None` without replicates.
pub(crate) fn group_consensus(
    replicates: &[Arc<Relation>],
    attrs: &[AttrId],
) -> Option<HashMap<GroupKey, f64>> {
    if replicates.is_empty() {
        return None;
    }
    let mut agreed: Option<HashMap<GroupKey, f64>> = None;
    for replicate in replicates {
        intersect_into(&mut agreed, replicate.group_counts(attrs), |a, v| *a += v);
    }
    let k = replicates.len() as f64;
    agreed.map(|m| m.into_iter().map(|(g, sum)| (g, sum / k)).collect())
}

/// Hybrid attribute-level `GROUP BY` (§4.3): sample groups keep their
/// reweighted counts; BN-consensus groups fill in what the sample missed.
pub(crate) fn hybrid_group_by(
    sample: &Relation,
    attrs: &[AttrId],
    replicates: &[Arc<Relation>],
) -> (HashMap<GroupKey, f64>, Route) {
    let mut answer = sample.group_counts(attrs);
    let sample_groups = answer.len();
    let mut bn_groups_added = 0;
    if let Some(consensus) = group_consensus(replicates, attrs) {
        for (group, count) in consensus {
            answer.entry(group).or_insert_with(|| {
                bn_groups_added += 1;
                count
            });
        }
    }
    (
        answer,
        Route::Hybrid {
            sample_groups,
            bn_groups_added,
        },
    )
}

/// Direct BN point inference as a scalar result: `n · Pr(attrs = values)`,
/// under the column name the engine would have produced.
pub(crate) fn bn_point_result(
    model: &Themis,
    attrs: &[AttrId],
    values: &[u32],
    column: String,
) -> Result<QueryResult, ExecError> {
    // `decide` only routes to BnPoint when the model has a BN; surface a
    // routing bug as an error rather than a panic.
    let bn = model.bayesian_network().ok_or_else(|| {
        ExecError::Unsupported("BnPoint routing requires a Bayesian network".into())
    })?;
    let est = model.population_size() * point_probability(bn, attrs, values);
    Ok(QueryResult {
        columns: vec![column],
        rows: vec![vec![Value::Num(est)]],
        group_arity: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_keeps_only_groups_present_everywhere() {
        let mut acc: Option<HashMap<&str, f64>> = None;
        intersect_into(&mut acc, [("a", 1.0), ("b", 2.0)].into(), |x, v| *x += v);
        intersect_into(&mut acc, [("a", 3.0), ("c", 9.0)].into(), |x, v| *x += v);
        intersect_into(&mut acc, [("a", 5.0), ("b", 1.0)].into(), |x, v| *x += v);
        let m = acc.unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m["a"], 9.0);
    }

    #[test]
    fn intersect_starts_from_the_first_map() {
        let mut acc: Option<HashMap<u8, f64>> = None;
        intersect_into(&mut acc, HashMap::from([(1u8, 4.0)]), |x, v| *x += v);
        assert_eq!(acc.unwrap()[&1], 4.0);
    }

    #[test]
    fn route_kinds_and_display() {
        let hybrid = Route::Hybrid {
            sample_groups: 3,
            bn_groups_added: 2,
        };
        assert_eq!(hybrid.kind(), RouteKind::Hybrid);
        assert_eq!(Route::Sample.kind(), RouteKind::Sample);
        assert_eq!(Route::BayesNet { k_agreed: 10 }.kind(), RouteKind::BayesNet);
        assert!(hybrid.to_string().contains("3 sample groups"));
        assert!(Route::BayesNet { k_agreed: 0 }.to_string().contains("direct inference"));
        assert!(Route::BayesNet { k_agreed: 7 }.to_string().contains("7 replicates"));
    }

    #[test]
    fn degraded_routes_are_sample_answers_with_provenance() {
        let degraded = Route::Degraded {
            planned: RouteKind::Hybrid,
            reason: DegradeReason::DeadlineExceeded,
        };
        assert_eq!(degraded.kind(), RouteKind::Sample);
        assert_eq!(degraded.planned_kind(), RouteKind::Hybrid);
        assert_eq!(degraded.degraded(), Some(DegradeReason::DeadlineExceeded));
        assert_eq!(
            degraded.to_string(),
            "Sample (degraded from Hybrid: deadline exceeded)"
        );
        assert_eq!(Route::Sample.planned_kind(), RouteKind::Sample);
        assert_eq!(Route::Sample.degraded(), None);
    }

    #[test]
    fn degrade_reasons_come_only_from_governance_and_worker_errors() {
        assert_eq!(
            DegradeReason::from_error(&Trip::Deadline.into()),
            Some(DegradeReason::DeadlineExceeded)
        );
        assert_eq!(
            DegradeReason::from_error(&Trip::RowBudget { limit: 9 }.into()),
            Some(DegradeReason::RowBudgetExceeded)
        );
        assert_eq!(
            DegradeReason::from_error(&Trip::GroupBudget { limit: 9 }.into()),
            Some(DegradeReason::GroupBudgetExceeded)
        );
        assert_eq!(
            DegradeReason::from_error(&ExecError::Internal("worker panicked: boom".into())),
            Some(DegradeReason::WorkerFailure)
        );
        // Cancellation and ordinary errors never degrade.
        assert_eq!(DegradeReason::from_error(&Trip::Cancelled.into()), None);
        assert_eq!(
            DegradeReason::from_error(&ExecError::UnknownColumn("nope".into())),
            None
        );
        // Reason text is stable enough for footers to echo.
        assert_eq!(DegradeReason::WorkerFailure.to_string(), "worker failure");
    }
}
