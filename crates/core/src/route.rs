//! Query routing (§4.3): decide which debiasing component answers a query,
//! and the single replicate-agreement merge every BN-backed answer path
//! shares.
//!
//! The paper's central claim is that neither debiasing technique dominates:
//! heavy hitters present in the sample are best answered by the reweighted
//! sample, tuples *missing* from the sample need Bayesian-network inference,
//! and open-world `GROUP BY` needs the union of both. This module makes
//! that decision explicit and observable: `decide` maps a parsed query to
//! a decision before anything executes (that is what
//! `ThemisSession::explain` surfaces), execution stamps the resulting
//! [`Route`] onto every [`crate::Answer`], and the three formerly duplicated
//! replicate-merge loops (`sql`, `sql_bn_only`, `group_by`) all funnel
//! through one `intersect_into` agreement step.

use crate::model::Themis;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;
use themis_bn::point_probability;
use themis_data::{AttrId, GroupKey, Relation};
use themis_query::{
    cmp_group_prefix, Catalog, EngineOptions, ExecError, QueryResult, Value,
};
use themis_sql::{AggFunc, Comparison, Literal, Predicate, Query, SelectItem};

/// Which debiasing component answered (or would answer) a query, without
/// the per-execution detail carried by [`Route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// The reweighted sample (`COUNT(*)` ≡ `SUM(weight)`).
    Sample,
    /// The learned Bayesian network.
    BayesNet,
    /// Sample groups unioned with BN-replicate consensus groups.
    Hybrid,
}

impl fmt::Display for RouteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteKind::Sample => write!(f, "Sample"),
            RouteKind::BayesNet => write!(f, "BayesNet"),
            RouteKind::Hybrid => write!(f, "Hybrid"),
        }
    }
}

/// The provenance of an executed answer: which component produced it, with
/// the execution-time detail the paper reports (§4.2.4, §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Answered entirely by the reweighted sample.
    Sample,
    /// Answered by the Bayesian network. `k_agreed` is the number of
    /// forward-sample replicates whose agreement produced the answer; `0`
    /// means direct inference (`n · Pr(X = v)`), which uses the exact joint
    /// probability and no replicates.
    BayesNet {
        /// Replicates that had to agree (0 ⇒ direct inference).
        k_agreed: usize,
    },
    /// Open-world union: every group of the reweighted-sample answer, plus
    /// the BN-consensus groups the sample missed.
    Hybrid {
        /// Groups contributed by the reweighted sample.
        sample_groups: usize,
        /// Groups added from the BN replicate consensus.
        bn_groups_added: usize,
    },
}

impl Route {
    /// The route without its execution detail (what `explain` can predict
    /// before running the query).
    pub fn kind(&self) -> RouteKind {
        match self {
            Route::Sample => RouteKind::Sample,
            Route::BayesNet { .. } => RouteKind::BayesNet,
            Route::Hybrid { .. } => RouteKind::Hybrid,
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Route::Sample => write!(f, "Sample"),
            Route::BayesNet { k_agreed: 0 } => write!(f, "BayesNet (direct inference)"),
            Route::BayesNet { k_agreed } => {
                write!(f, "BayesNet ({k_agreed} replicates agreed)")
            }
            Route::Hybrid {
                sample_groups,
                bn_groups_added,
            } => write!(
                f,
                "Hybrid ({sample_groups} sample groups, {bn_groups_added} BN groups added)"
            ),
        }
    }
}

/// The routing decision for a query, *without executing it* — returned by
/// `ThemisSession::explain`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explain {
    /// The route the query will take when executed.
    pub route: RouteKind,
    /// Human-readable justification of the decision.
    pub reason: String,
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "route: {} — {}", self.route, self.reason)
    }
}

/// Internal routing decision, carrying what execution needs.
pub(crate) enum Decision {
    /// Run on the reweighted sample.
    Sample { reason: String },
    /// A point query about a tuple absent from the sample: answer by direct
    /// BN inference, `n · Pr(attrs = values)`.
    BnPoint {
        attrs: Vec<AttrId>,
        values: Vec<u32>,
        /// Output column name, mirroring what the engine would produce.
        column: String,
        reason: String,
    },
    /// Grouped query: sample answer unioned with BN replicate consensus.
    Hybrid { reason: String },
}

impl Decision {
    pub(crate) fn explain(&self) -> Explain {
        let (route, reason) = match self {
            Decision::Sample { reason } => (RouteKind::Sample, reason),
            Decision::BnPoint { reason, .. } => (RouteKind::BayesNet, reason),
            Decision::Hybrid { reason } => (RouteKind::Hybrid, reason),
        };
        Explain {
            route,
            reason: reason.clone(),
        }
    }
}

/// Whether the query produces grouped output (explicit `GROUP BY`, or the
/// paper's Table 5 shorthand of bare columns in the SELECT list).
fn is_grouped(query: &Query) -> bool {
    !query.group_by.is_empty()
        || query
            .select
            .iter()
            .any(|item| matches!(item, SelectItem::Column(_)))
}

/// A scalar count query pinned to one tuple: `SELECT COUNT(*) FROM t WHERE
/// a = 'x' AND b = 'y' ...` — the SQL spelling of the paper's point query.
struct PointShape {
    attrs: Vec<AttrId>,
    values: Vec<u32>,
    column: String,
}

/// Recognize a point-shaped query against the sample's schema. Returns
/// `None` for anything the point router should not touch (ranges, joins,
/// unknown labels, non-count aggregates, ...): those run on the sample, so
/// planner errors surface exactly as they would have.
fn point_shape(sample: &Relation, query: &Query) -> Option<PointShape> {
    if query.from.len() != 1
        || query.order_by.is_some()
        || query.limit.is_some()
        || !query.group_by.is_empty()
    {
        return None;
    }
    let schema = sample.schema();
    // Any table qualifier must name the single FROM binding; a stray
    // qualifier means the engine would reject the query, and the point
    // router must not answer SQL the engine rejects.
    let binding = query.from[0].binding();
    let qualifier_ok =
        |col: &themis_sql::ColumnRef| col.table.as_deref().is_none_or(|t| t == binding);
    // Exactly one aggregate, and it must be a (weighted) count.
    let [item] = &query.select[..] else {
        return None;
    };
    if let SelectItem::Aggregate { arg: Some(c), .. } = item {
        if !qualifier_ok(c) {
            return None;
        }
    }
    let column = match item {
        SelectItem::Aggregate {
            func: AggFunc::Count,
            arg,
            alias,
        } => alias.clone().unwrap_or_else(|| match arg {
            Some(c) => format!("{}({c})", AggFunc::Count.name()),
            None => format!("{}(*)", AggFunc::Count.name()),
        }),
        SelectItem::Aggregate {
            func: AggFunc::Sum,
            arg: Some(c),
            alias,
        } if c.column.eq_ignore_ascii_case("weight") && schema.attr_id(&c.column).is_none() => {
            alias
                .clone()
                .unwrap_or_else(|| format!("{}({c})", AggFunc::Sum.name()))
        }
        _ => return None,
    };
    // Every predicate must pin one distinct attribute to one in-domain
    // label. (A label outside the domain cannot be represented by the BN
    // either — the sample route answers 0 for it, which is correct.)
    let mut attrs = Vec::with_capacity(query.predicates.len());
    let mut values = Vec::with_capacity(query.predicates.len());
    for p in &query.predicates {
        let Predicate::Compare {
            col,
            op: Comparison::Eq,
            value: Literal::Str(s),
        } = p
        else {
            return None;
        };
        if !qualifier_ok(col) {
            return None;
        }
        let attr = schema.attr_id(&col.column)?;
        if attrs.contains(&attr) {
            return None;
        }
        let id = schema.domain(attr).id_of(s)?;
        attrs.push(attr);
        values.push(id);
    }
    if attrs.is_empty() {
        // A bare `SELECT COUNT(*)` is the total count — the reweighted
        // sample's Σ w(t) is the debiased answer.
        return None;
    }
    Some(PointShape {
        attrs,
        values,
        column,
    })
}

/// Route a parsed query (§4.3). This is pure decision logic — nothing
/// executes — so `ThemisSession::explain` and the execution path cannot
/// disagree: both call this exact function.
pub(crate) fn decide(model: &Themis, query: &Query) -> Decision {
    if model.bayesian_network().is_none() {
        return Decision::Sample {
            reason: "model has no Bayesian network; every query answers from the reweighted \
                     sample"
                .into(),
        };
    }
    if is_grouped(query) {
        return Decision::Hybrid {
            reason: format!(
                "grouped query: reweighted-sample groups unioned with groups agreed by all {} \
                 BN replicates",
                model.config().k_samples
            ),
        };
    }
    let sample = model.reweighted_sample();
    if let Some(point) = point_shape(sample, query) {
        let described: Vec<String> = point
            .attrs
            .iter()
            .zip(&point.values)
            .map(|(&a, &v)| {
                format!(
                    "{} = '{}'",
                    sample.schema().attr(a).name(),
                    sample.schema().domain(a).label(v)
                )
            })
            .collect();
        let described = described.join(", ");
        if sample.contains_point(&point.attrs, &point.values) {
            return Decision::Sample {
                reason: format!(
                    "point query ({described}) hits the sample; answered by SUM(weight)"
                ),
            };
        }
        return Decision::BnPoint {
            reason: format!(
                "point query ({described}) misses the sample; answered by n · Pr(...) from \
                 the Bayesian network"
            ),
            attrs: point.attrs,
            values: point.values,
            column: point.column,
        };
    }
    Decision::Sample {
        reason: "scalar aggregate (no grouping, not a single-tuple point query); answered \
                 from the reweighted sample"
            .into(),
    }
}

/// Bind every FROM table of `query` to `relation` — an `Arc` bump per
/// binding, never a data clone — and execute on the morsel engine.
pub(crate) fn run_on(
    relation: &Arc<Relation>,
    query: &Query,
    opts: &EngineOptions,
) -> Result<QueryResult, ExecError> {
    let mut catalog = Catalog::new();
    for table in &query.from {
        catalog.register(table.name.clone(), Arc::clone(relation));
    }
    themis_query::execute_parallel(&catalog, query, opts)
}

/// Draw the model's K forward-sample replicates (§4.2.4), each scaled to
/// the population size. Deterministic in the model's seed, so every call —
/// and every session — sees identical replicates.
pub(crate) fn simulate_replicates(model: &Themis) -> Vec<Arc<Relation>> {
    let Some(bn) = model.bayesian_network() else {
        return Vec::new();
    };
    let config = model.config();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let size = config
        .bn_sample_size
        .unwrap_or(model.reweighted_sample().len());
    themis_bn::sampling::forward_samples(
        bn,
        config.k_samples,
        size,
        model.population_size(),
        &mut rng,
    )
    .into_iter()
    .map(Arc::new)
    .collect()
}

/// The one replicate-agreement step behind every K-replicate answer (the
/// hybrid SQL union, BN-only SQL, and attribute-level `GROUP BY`): after
/// folding all K maps through this, a group survives only if present in
/// *every* replicate, with its values combined by `add`.
pub(crate) fn intersect_into<K: Eq + Hash, V>(
    acc: &mut Option<HashMap<K, V>>,
    next: HashMap<K, V>,
    mut add: impl FnMut(&mut V, V),
) {
    match acc {
        None => *acc = Some(next),
        Some(prev) => {
            prev.retain(|k, _| next.contains_key(k));
            for (k, v) in next {
                if let Some(slot) = prev.get_mut(&k) {
                    add(slot, v);
                }
            }
        }
    }
}

/// Groups agreed by all replicates for a SQL query, with per-aggregate
/// value *sums* (callers divide by K to average). Also hands back the first
/// replicate's result as a column/shape template. `None` when there are no
/// replicates.
struct Consensus {
    template: QueryResult,
    groups: HashMap<Vec<String>, Vec<f64>>,
}

fn replicate_consensus(
    replicates: &[Arc<Relation>],
    query: &Query,
    opts: &EngineOptions,
) -> Result<Option<Consensus>, ExecError> {
    let mut template: Option<QueryResult> = None;
    let mut agreed: Option<HashMap<Vec<String>, Vec<f64>>> = None;
    for replicate in replicates {
        let result = run_on(replicate, query, opts)?;
        let m = result.to_map();
        if template.is_none() {
            template = Some(result);
        }
        intersect_into(&mut agreed, m, |acc, vals| {
            for (a, v) in acc.iter_mut().zip(vals) {
                *a += v;
            }
        });
    }
    Ok(template.map(|template| Consensus {
        template,
        groups: agreed.unwrap_or_default(),
    }))
}

/// Turn a consensus group into an output row (labels, then K-averaged
/// aggregate values).
fn consensus_row(group: Vec<String>, sums: Vec<f64>, k: f64) -> Vec<Value> {
    let mut row: Vec<Value> = group.into_iter().map(Value::Str).collect();
    row.extend(sums.into_iter().map(|s| Value::Num(s / k)));
    row
}

/// The query with `ORDER BY` / `LIMIT` stripped: merge paths must union
/// *complete* group sets — truncating inputs first would both lose sample
/// groups (letting BN consensus values shadow real sample answers) and
/// make the consensus depend on per-replicate row ranking.
fn without_order_limit(query: &Query) -> Query {
    let mut inner = query.clone();
    inner.order_by = None;
    inner.limit = None;
    inner
}

/// Re-impose the *original* query's ordering on merged rows: sort by the
/// borrowed group prefix for determinism (consensus groups come out of a
/// hash map), then apply `ORDER BY` / `LIMIT` if the query had them.
fn finish_merged(result: &mut QueryResult, query: &Query) -> Result<(), ExecError> {
    let arity = result.group_arity;
    result.rows.sort_by(|a, b| cmp_group_prefix(a, b, arity));
    if let Some(order) = &query.order_by {
        themis_query::apply_order_by(result, order)?;
    }
    if let Some(limit) = query.limit {
        result.rows.truncate(limit);
    }
    Ok(())
}

/// Hybrid SQL (§4.3): the reweighted-sample answer, unioned with the
/// BN-consensus groups the sample missed. The union happens over the
/// *untruncated* group sets; `ORDER BY` / `LIMIT` apply to the merged
/// result, so a LIMIT ranks sample and BN groups together instead of
/// letting consensus values shadow sample groups the limit cut.
pub(crate) fn hybrid_sql(
    sample: &Arc<Relation>,
    query: &Query,
    opts: &EngineOptions,
    replicates: &[Arc<Relation>],
) -> Result<(QueryResult, Route), ExecError> {
    let inner = without_order_limit(query);
    let mut merged = run_on(sample, &inner, opts)?;
    let sample_groups = merged.rows.len();
    let mut bn_groups_added = 0;
    if let Some(consensus) = replicate_consensus(replicates, &inner, opts)? {
        let existing: HashSet<Vec<String>> = merged.to_map().into_keys().collect();
        let k = replicates.len() as f64;
        // themis-lint: allow(deterministic-iteration) reason=finish_merged below sorts merged rows by group prefix before ORDER BY/LIMIT applies
        for (group, sums) in consensus.groups {
            if existing.contains(&group) {
                continue;
            }
            merged.rows.push(consensus_row(group, sums, k));
            bn_groups_added += 1;
        }
    }
    finish_merged(&mut merged, query)?;
    Ok((
        merged,
        Route::Hybrid {
            sample_groups,
            bn_groups_added,
        },
    ))
}

/// BN-only SQL (§4.2.4 generalized): the query runs on each replicate;
/// groups present in all of them are returned with averaged values, with
/// the query's `ORDER BY` / `LIMIT` applied to the merged result.
pub(crate) fn bn_only_sql(
    query: &Query,
    opts: &EngineOptions,
    replicates: &[Arc<Relation>],
) -> Result<QueryResult, ExecError> {
    let inner = without_order_limit(query);
    let Some(consensus) = replicate_consensus(replicates, &inner, opts)? else {
        return Err(ExecError::Unsupported(
            "k_samples = 0: no BN replicates to answer from".into(),
        ));
    };
    let k = replicates.len() as f64;
    let mut out = consensus.template;
    out.rows = consensus
        // themis-lint: allow(deterministic-iteration) reason=finish_merged below sorts rows by group prefix before ORDER BY/LIMIT applies
        .groups
        .into_iter()
        .map(|(group, sums)| consensus_row(group, sums, k))
        .collect();
    finish_merged(&mut out, query)?;
    Ok(out)
}

/// BN-consensus counts for an attribute-level `GROUP BY` (K-averaged), or
/// `None` without replicates.
pub(crate) fn group_consensus(
    replicates: &[Arc<Relation>],
    attrs: &[AttrId],
) -> Option<HashMap<GroupKey, f64>> {
    if replicates.is_empty() {
        return None;
    }
    let mut agreed: Option<HashMap<GroupKey, f64>> = None;
    for replicate in replicates {
        intersect_into(&mut agreed, replicate.group_counts(attrs), |a, v| *a += v);
    }
    let k = replicates.len() as f64;
    agreed.map(|m| m.into_iter().map(|(g, sum)| (g, sum / k)).collect())
}

/// Hybrid attribute-level `GROUP BY` (§4.3): sample groups keep their
/// reweighted counts; BN-consensus groups fill in what the sample missed.
pub(crate) fn hybrid_group_by(
    sample: &Relation,
    attrs: &[AttrId],
    replicates: &[Arc<Relation>],
) -> (HashMap<GroupKey, f64>, Route) {
    let mut answer = sample.group_counts(attrs);
    let sample_groups = answer.len();
    let mut bn_groups_added = 0;
    if let Some(consensus) = group_consensus(replicates, attrs) {
        for (group, count) in consensus {
            answer.entry(group).or_insert_with(|| {
                bn_groups_added += 1;
                count
            });
        }
    }
    (
        answer,
        Route::Hybrid {
            sample_groups,
            bn_groups_added,
        },
    )
}

/// Direct BN point inference as a scalar result: `n · Pr(attrs = values)`,
/// under the column name the engine would have produced.
pub(crate) fn bn_point_result(
    model: &Themis,
    attrs: &[AttrId],
    values: &[u32],
    column: String,
) -> Result<QueryResult, ExecError> {
    // `decide` only routes to BnPoint when the model has a BN; surface a
    // routing bug as an error rather than a panic.
    let bn = model.bayesian_network().ok_or_else(|| {
        ExecError::Unsupported("BnPoint routing requires a Bayesian network".into())
    })?;
    let est = model.population_size() * point_probability(bn, attrs, values);
    Ok(QueryResult {
        columns: vec![column],
        rows: vec![vec![Value::Num(est)]],
        group_arity: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_keeps_only_groups_present_everywhere() {
        let mut acc: Option<HashMap<&str, f64>> = None;
        intersect_into(&mut acc, [("a", 1.0), ("b", 2.0)].into(), |x, v| *x += v);
        intersect_into(&mut acc, [("a", 3.0), ("c", 9.0)].into(), |x, v| *x += v);
        intersect_into(&mut acc, [("a", 5.0), ("b", 1.0)].into(), |x, v| *x += v);
        let m = acc.unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m["a"], 9.0);
    }

    #[test]
    fn intersect_starts_from_the_first_map() {
        let mut acc: Option<HashMap<u8, f64>> = None;
        intersect_into(&mut acc, HashMap::from([(1u8, 4.0)]), |x, v| *x += v);
        assert_eq!(acc.unwrap()[&1], 4.0);
    }

    #[test]
    fn route_kinds_and_display() {
        let hybrid = Route::Hybrid {
            sample_groups: 3,
            bn_groups_added: 2,
        };
        assert_eq!(hybrid.kind(), RouteKind::Hybrid);
        assert_eq!(Route::Sample.kind(), RouteKind::Sample);
        assert_eq!(Route::BayesNet { k_agreed: 10 }.kind(), RouteKind::BayesNet);
        assert!(hybrid.to_string().contains("3 sample groups"));
        assert!(Route::BayesNet { k_agreed: 0 }.to_string().contains("direct inference"));
        assert!(Route::BayesNet { k_agreed: 7 }.to_string().contains("7 replicates"));
    }
}
