//! The Themis model `M(Γ, S)`: building, reweighting, and the model-level
//! estimators (§3). SQL answering with routing and provenance lives on
//! [`crate::ThemisSession`]; the routing internals in [`crate::route`].

use crate::error::ThemisError;
use crate::route;
use std::collections::HashMap;
use std::sync::Arc;
use themis_aggregates::AggregateSet;
use themis_bn::{learn, point_probability, BayesianNetwork, LearnMode, LearnOptions};
use themis_data::{AttrId, GroupKey, Relation};
use themis_reweight::{
    ipf_weights, linreg_weights, uniform_weights, IpfOptions, IpfReport, LinRegOptions,
};

/// Which sample-reweighting technique the model uses (§4.1).
#[derive(Debug, Clone)]
pub enum ReweightMethod {
    /// Uniform `|P|/|S|` weights — the default-AQP baseline.
    Uniform,
    /// Constrained linear regression (§4.1.1).
    LinReg(LinRegOptions),
    /// Iterative Proportional Fitting (§4.1.2) — the Themis default.
    Ipf(IpfOptions),
}

/// Configuration for building a Themis model.
#[derive(Debug, Clone)]
pub struct ThemisConfig {
    /// Reweighting technique.
    pub reweighting: ReweightMethod,
    /// BN learning mode; `None` disables the probabilistic component
    /// (turning the hybrid into a pure reweighter).
    pub bn_mode: Option<LearnMode>,
    /// BN learning options.
    pub bn_options: LearnOptions,
    /// Number of replicate BN samples for `GROUP BY` answering (§4.2.4;
    /// the paper uses K = 10).
    pub k_samples: usize,
    /// Size of each replicate sample; `None` uses the input sample's size.
    pub bn_sample_size: Option<usize>,
    /// RNG seed for BN sampling.
    pub seed: u64,
}

impl Default for ThemisConfig {
    fn default() -> Self {
        Self {
            reweighting: ReweightMethod::Ipf(IpfOptions::default()),
            bn_mode: Some(LearnMode::BB),
            bn_options: LearnOptions::default(),
            k_samples: 10,
            bn_sample_size: None,
            seed: 0x7E15,
        }
    }
}

/// A built Themis model: the reweighted sample plus (optionally) the learned
/// Bayesian network of the population.
#[derive(Debug, Clone)]
pub struct Themis {
    /// Shared so query paths can bind it into catalogs by pointer bump.
    sample: Arc<Relation>,
    aggregates: AggregateSet,
    population_size: f64,
    bn: Option<BayesianNetwork>,
    config: ThemisConfig,
    ipf_report: Option<IpfReport>,
}

impl Themis {
    /// Build the model: learn tuple weights from `Γ` and (optionally) the
    /// population Bayesian network.
    pub fn build(
        mut sample: Relation,
        aggregates: AggregateSet,
        population_size: f64,
        config: ThemisConfig,
    ) -> Self {
        let mut ipf_report = None;
        let weights = match &config.reweighting {
            ReweightMethod::Uniform => uniform_weights(&sample, population_size),
            ReweightMethod::LinReg(opts) => {
                linreg_weights(&sample, &aggregates, population_size, opts).0
            }
            ReweightMethod::Ipf(opts) => {
                let (w, rep) = ipf_weights(&sample, &aggregates, opts);
                ipf_report = Some(rep);
                w
            }
        };
        sample.set_weights(weights);

        let bn = config
            .bn_mode
            .map(|mode| learn(&sample, &aggregates, population_size, mode, &config.bn_options));

        Self {
            sample: Arc::new(sample),
            aggregates,
            population_size,
            bn,
            config,
            ipf_report,
        }
    }

    /// Assemble a model from already-computed parts — the incremental-ingest
    /// path (`ThemisSession::ingest`), which recomputes weights and relearns
    /// the BN itself (reusing the extended incidence matrix) and must not
    /// pay [`Themis::build`]'s from-scratch reweighting again. `sample` must
    /// already carry its final weights.
    pub(crate) fn from_parts(
        sample: Relation,
        aggregates: AggregateSet,
        population_size: f64,
        bn: Option<BayesianNetwork>,
        config: ThemisConfig,
        ipf_report: Option<IpfReport>,
    ) -> Self {
        Self {
            sample: Arc::new(sample),
            aggregates,
            population_size,
            bn,
            config,
            ipf_report,
        }
    }

    /// Build a model from *multiple* samples of the same population — the
    /// paper's §8 future-work item "integrate multiple samples into the
    /// debiasing process". The samples are unioned into one relation (each
    /// tuple keeps its own learned weight — IPF and LinReg both treat
    /// tuples individually, so differently-biased sources coexist) and the
    /// model is built as usual.
    ///
    /// # Errors
    /// [`ThemisError::NoSamples`] if `samples` is empty;
    /// [`ThemisError::SchemaMismatch`] if the schemas differ.
    pub fn build_multi(
        samples: Vec<Relation>,
        aggregates: AggregateSet,
        population_size: f64,
        config: ThemisConfig,
    ) -> Result<Self, ThemisError> {
        let mut iter = samples.into_iter();
        let mut union = iter.next().ok_or(ThemisError::NoSamples)?;
        for (i, s) in iter.enumerate() {
            if union.schema() != s.schema() {
                return Err(ThemisError::SchemaMismatch { index: i + 1 });
            }
            for (row, _) in s.iter_rows() {
                union.push_row(&row);
            }
        }
        Ok(Self::build(union, aggregates, population_size, config))
    }

    /// The reweighted sample.
    pub fn reweighted_sample(&self) -> &Relation {
        &self.sample
    }

    /// The reweighted sample as its shared handle — what sessions bind into
    /// per-query catalogs without cloning row data.
    pub fn sample_arc(&self) -> &Arc<Relation> {
        &self.sample
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ThemisConfig {
        &self.config
    }

    /// The learned Bayesian network, if any.
    pub fn bayesian_network(&self) -> Option<&BayesianNetwork> {
        self.bn.as_ref()
    }

    /// The aggregates the model was built from.
    pub fn aggregates(&self) -> &AggregateSet {
        &self.aggregates
    }

    /// The (approximate) population size `n`.
    pub fn population_size(&self) -> f64 {
        self.population_size
    }

    /// IPF convergence report, when IPF was the reweighting method.
    pub fn ipf_report(&self) -> Option<&IpfReport> {
        self.ipf_report.as_ref()
    }

    /// Human-readable model summary: weight statistics, aggregate
    /// knowledge, and the learned network structure.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let w = self.sample.weights();
        let total: f64 = w.iter().sum();
        let max = w.iter().fold(0.0f64, |m, &x| m.max(x));
        let min = w.iter().fold(f64::INFINITY, |m, &x| m.min(x));
        out.push_str(&format!(
            "sample: {} tuples, total weight {:.1} (n = {}), w(t) in [{:.3}, {:.3}]\n",
            self.sample.len(),
            total,
            self.population_size,
            min,
            max
        ));
        out.push_str(&format!(
            "aggregates: {} ({} constraint groups)\n",
            self.aggregates.len(),
            self.aggregates.total_groups()
        ));
        if let Some(rep) = &self.ipf_report {
            out.push_str(&format!(
                "IPF: {} sweeps, violation {:.2e}, converged = {}\n",
                rep.iterations, rep.final_violation, rep.converged
            ));
        }
        match &self.bn {
            Some(bn) => {
                out.push_str(&format!(
                    "Bayesian network: {} parameters, edges:",
                    bn.parameter_count()
                ));
                let edges = bn.edges();
                if edges.is_empty() {
                    out.push_str(" (none — all attributes independent)");
                }
                for (p, c) in edges {
                    out.push_str(&format!(
                        " {} -> {},",
                        bn.schema().attr(p).name(),
                        bn.schema().attr(c).name()
                    ));
                }
                if out.ends_with(',') {
                    out.pop();
                }
            }
            None => out.push_str("Bayesian network: disabled"),
        }
        out
    }

    /// Hybrid point query (§4.3): if the queried tuple exists in the
    /// sample, answer from the reweighted sample (`SUM(weight)`); otherwise
    /// fall back to direct BN inference, `n · Pr(X = v)`.
    pub fn point_query(&self, attrs: &[AttrId], values: &[u32]) -> f64 {
        if self.sample.contains_point(attrs, values) {
            self.sample.point_count(attrs, values)
        } else if let Some(bn) = &self.bn {
            self.population_size * point_probability(bn, attrs, values)
        } else {
            0.0
        }
    }

    /// Point query answered by the reweighted sample only.
    pub fn point_query_sample(&self, attrs: &[AttrId], values: &[u32]) -> f64 {
        self.sample.point_count(attrs, values)
    }

    /// Point query answered by BN inference only.
    ///
    /// # Errors
    /// [`ThemisError::NoBayesNet`] if the model was built without a BN.
    pub fn point_query_bn(&self, attrs: &[AttrId], values: &[u32]) -> Result<f64, ThemisError> {
        let bn = self.bn.as_ref().ok_or(ThemisError::NoBayesNet)?;
        Ok(self.population_size * point_probability(bn, attrs, values))
    }

    /// Hybrid `GROUP BY attrs, COUNT(*)` (§4.3): all groups from the
    /// reweighted sample, unioned with groups that appear in every one of
    /// the K BN sample answers but not in the sample answer.
    ///
    /// This simulates the K replicates afresh per call; a
    /// [`crate::ThemisSession`] caches them across queries instead.
    pub fn group_by(&self, attrs: &[AttrId]) -> HashMap<GroupKey, f64> {
        route::hybrid_group_by(&self.sample, attrs, &route::simulate_replicates(self)).0
    }

    /// `GROUP BY` answered by the BN alone (§4.2.4).
    ///
    /// # Errors
    /// [`ThemisError::NoBayesNet`] if the model was built without a BN.
    pub fn group_by_bn(
        &self,
        attrs: &[AttrId],
    ) -> Result<HashMap<GroupKey, f64>, ThemisError> {
        if self.bn.is_none() {
            return Err(ThemisError::NoBayesNet);
        }
        Ok(route::group_consensus(&route::simulate_replicates(self), attrs)
            .unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_aggregates::AggregateResult;
    use themis_data::paper_example::{example_population, example_sample};

    fn build(config: ThemisConfig) -> (Relation, Themis) {
        let p = example_population();
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        let t = Themis::build(example_sample(), aggregates, 10.0, config);
        (p, t)
    }

    #[test]
    fn in_sample_point_query_uses_reweighted_sample() {
        let (p, t) = build(ThemisConfig::default());
        let attrs = [AttrId(1), AttrId(2)];
        // NC→NY is in the sample: hybrid answer == sample answer.
        assert_eq!(
            t.point_query(&attrs, &[1, 2]),
            t.point_query_sample(&attrs, &[1, 2])
        );
        let truth = p.point_count(&attrs, &[1, 2]);
        assert!((t.point_query(&attrs, &[1, 2]) - truth).abs() < 1.0);
    }

    #[test]
    fn missing_tuple_falls_back_to_bn() {
        let (p, t) = build(ThemisConfig::default());
        let attrs = [AttrId(1), AttrId(2)];
        // FL→NY exists in the population (count 1) but not in the sample.
        let est = t.point_query(&attrs, &[0, 2]);
        assert!(est > 0.0, "open-world estimate must be positive");
        let truth = p.point_count(&attrs, &[0, 2]);
        assert!((est - truth).abs() < 1.5, "est {est} vs truth {truth}");
    }

    #[test]
    fn without_bn_missing_tuples_are_zero() {
        let config = ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        };
        let (_, t) = build(config);
        assert_eq!(t.point_query(&[AttrId(1), AttrId(2)], &[0, 2]), 0.0);
    }

    #[test]
    fn group_by_unions_bn_groups() {
        let (_, t) = build(ThemisConfig {
            bn_sample_size: Some(4_000),
            ..ThemisConfig::default()
        });
        let sample_groups = t.reweighted_sample().group_counts(&[AttrId(1), AttrId(2)]);
        let hybrid = t.group_by(&[AttrId(1), AttrId(2)]);
        assert!(hybrid.len() >= sample_groups.len());
        // Sample groups keep their reweighted counts.
        for (g, c) in &sample_groups {
            assert_eq!(hybrid[g], *c);
        }
    }

    #[test]
    fn group_by_bn_requires_a_network() {
        let (_, t) = build(ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        });
        assert_eq!(
            t.group_by_bn(&[AttrId(1)]),
            Err(ThemisError::NoBayesNet)
        );
        let (_, t) = build(ThemisConfig::default());
        assert!(!t.group_by_bn(&[AttrId(1)]).unwrap().is_empty());
    }

    #[test]
    fn point_query_bn_requires_a_network() {
        let (_, t) = build(ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        });
        assert_eq!(
            t.point_query_bn(&[AttrId(0)], &[0]),
            Err(ThemisError::NoBayesNet)
        );
    }

    #[test]
    fn uniform_config_reproduces_aqp() {
        let config = ThemisConfig {
            reweighting: ReweightMethod::Uniform,
            bn_mode: None,
            ..ThemisConfig::default()
        };
        let (_, t) = build(config);
        // Every weight is 10/4.
        assert!(t
            .reweighted_sample()
            .weights()
            .iter()
            .all(|&w| (w - 2.5).abs() < 1e-12));
    }

    #[test]
    fn ipf_report_is_exposed() {
        let (_, t) = build(ThemisConfig::default());
        let rep = t.ipf_report().expect("IPF is the default");
        assert!(!rep.converged, "Example 4.2's sample cannot converge");
    }

    #[test]
    fn describe_summarizes_the_model() {
        let (_, t) = build(ThemisConfig::default());
        let d = t.describe();
        assert!(d.contains("4 tuples"), "{d}");
        assert!(d.contains("aggregates: 2 (9 constraint groups)"), "{d}");
        assert!(d.contains("IPF:"), "{d}");
        assert!(d.contains("Bayesian network:"), "{d}");
        let (_, t) = build(ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        });
        assert!(t.describe().contains("disabled"));
    }

    #[test]
    fn multi_sample_build_unions_tuples() {
        let p = example_population();
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        // Two complementary biased samples: together they cover both dates.
        let mut s1 = Relation::new(p.schema().clone());
        s1.push_row_labels(&["01", "FL", "FL"]);
        s1.push_row_labels(&["01", "NY", "NC"]);
        let mut s2 = Relation::new(p.schema().clone());
        s2.push_row_labels(&["02", "NC", "NY"]);
        s2.push_row_labels(&["02", "NY", "NY"]);
        let t = Themis::build_multi(vec![s1, s2], aggregates, 10.0, ThemisConfig::default())
            .expect("matching schemas");
        assert_eq!(t.reweighted_sample().len(), 4);
        // Both dates answerable from the union (each single-source sample
        // covers only one date); IPF can recover at most the mass of the
        // group-by cells its tuples occupy (2 + 1 = 3 of the 5 date=01
        // flights), so allow that slack.
        for (date, truth) in [(0u32, 5.0), (1u32, 5.0)] {
            let est = t.point_query(&[AttrId(0)], &[date]);
            assert!(est > 2.0, "date {date}: estimate {est} too small");
            assert!((est - truth).abs() <= 2.1, "date {date}: {est} vs {truth}");
        }
    }

    #[test]
    fn multi_sample_rejects_mixed_schemas_and_empty_input() {
        let other = themis_data::Schema::new(vec![themis_data::Attribute::new(
            "x",
            themis_data::Domain::indexed("x", 2),
        )]);
        let mut s2 = Relation::new(other);
        s2.push_row(&[0]);
        let err = Themis::build_multi(
            vec![example_sample(), s2],
            AggregateSet::new(),
            10.0,
            ThemisConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ThemisError::SchemaMismatch { index: 1 });
        assert!(err.to_string().contains("sample 1"));
        assert_eq!(
            Themis::build_multi(Vec::new(), AggregateSet::new(), 10.0, ThemisConfig::default())
                .unwrap_err(),
            ThemisError::NoSamples
        );
    }
}
