//! The error type of the session query API.
//!
//! Every fallible call on [`crate::ThemisSession`] (and on the model-level
//! accessors that used to panic) returns a [`ThemisError`] — the public
//! query surface is panic-free.

use std::fmt;
use themis_query::ExecError;

/// Anything that can go wrong building or querying a Themis model.
#[derive(Debug, Clone, PartialEq)]
pub enum ThemisError {
    /// SQL parsing, planning, or execution failed.
    Exec(ExecError),
    /// A Bayesian-network operation was requested on a model built with
    /// `bn_mode: None`.
    NoBayesNet,
    /// [`crate::Themis::build_multi`] was called with no samples.
    NoSamples,
    /// [`crate::Themis::build_multi`] received samples whose schemas differ;
    /// `index` is the position of the first offending sample.
    SchemaMismatch {
        /// Index (into the input `Vec`) of the first sample whose schema
        /// differs from sample 0's.
        index: usize,
    },
    /// An ingest batch was rejected (arity or unknown label) before any row
    /// was applied — the world is unchanged.
    Ingest(themis_live::IngestError),
}

impl fmt::Display for ThemisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThemisError::Exec(e) => write!(f, "{e}"),
            ThemisError::NoBayesNet => {
                write!(f, "model has no Bayesian network (built with bn_mode: None)")
            }
            ThemisError::NoSamples => write!(f, "build_multi needs at least one sample"),
            ThemisError::SchemaMismatch { index } => {
                write!(f, "sample {index} does not share sample 0's schema")
            }
            ThemisError::Ingest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ThemisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThemisError::Exec(e) => Some(e),
            ThemisError::Ingest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<themis_live::IngestError> for ThemisError {
    fn from(e: themis_live::IngestError) -> Self {
        ThemisError::Ingest(e)
    }
}

impl From<ExecError> for ThemisError {
    fn from(e: ExecError) -> Self {
        ThemisError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ThemisError, &str)> = vec![
            (ThemisError::Exec(ExecError::UnknownTable("t".into())), "unknown table t"),
            (ThemisError::NoBayesNet, "no Bayesian network"),
            (ThemisError::NoSamples, "at least one sample"),
            (ThemisError::SchemaMismatch { index: 2 }, "sample 2"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn exec_errors_convert_and_expose_a_source() {
        let err: ThemisError = ExecError::Parse("bad".into()).into();
        assert_eq!(err, ThemisError::Exec(ExecError::Parse("bad".into())));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&ThemisError::NoBayesNet).is_none());
    }
}
