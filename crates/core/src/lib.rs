//! # themis-core
//!
//! Themis: the first open-world database system (OW-DBMS) that automatically
//! rebalances arbitrarily biased samples to approximately answer queries as
//! if they were issued over the entire population (Orr, Balazinska, Suciu —
//! SIGMOD 2020).
//!
//! The data scientist inserts a biased sample `S` and a set of population
//! aggregates `Γ`, then asks queries; Themis builds a model `M(Γ, S)`
//! combining two debiasing techniques and routes each query to the right
//! one (§4.3):
//!
//! * a **reweighted sample** (uniform / constrained linear regression / IPF,
//!   see `themis-reweight`) — accurate for heavy hitters present in `S`,
//! * a **Bayesian network** over the population distribution (see
//!   `themis-bn`) — able to answer queries about tuples that are *not* in
//!   `S`, including when the sample's support differs from the population's.
//!
//! ## Querying: sessions, answers, routes
//!
//! Build a [`Themis`] model, then query it through a [`ThemisSession`]: the
//! session owns an explicit [`EngineOptions`] (no environment variables),
//! caches the K Bayesian-network replicates across queries, and stamps
//! every [`Answer`] with the [`Route`] that produced it. [`ThemisSession::explain`]
//! returns the routing decision without executing.
//!
//! ```
//! use themis_core::{Route, Themis, ThemisConfig, ThemisSession};
//! use themis_aggregates::{AggregateResult, AggregateSet};
//! use themis_data::paper_example::{example_population, example_sample};
//! use themis_data::AttrId;
//!
//! let population = example_population(); // normally unavailable!
//! let aggregates = AggregateSet::from_results(vec![
//!     AggregateResult::compute(&population, &[AttrId(0)]),
//!     AggregateResult::compute(&population, &[AttrId(1), AttrId(2)]),
//! ]);
//! let model = Themis::build(example_sample(), aggregates, 10.0, ThemisConfig::default());
//! let session = ThemisSession::new(model);
//!
//! // A point query about a tuple missing from the sample routes to the
//! // Bayesian network and still gets a non-trivial open-world answer.
//! let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'";
//! let answer = session.sql(sql).unwrap();
//! assert_eq!(answer.route, Route::BayesNet { k_agreed: 0 });
//! assert!(answer.scalar().unwrap() > 0.0);
//! // ...and explain predicts that route without executing.
//! assert_eq!(session.explain(sql).unwrap().route, answer.route.kind());
//! ```

#![forbid(unsafe_code)]

pub mod baselines;
pub mod error;
pub mod metrics;
pub mod model;
pub mod route;
pub mod session;

pub use error::ThemisError;
pub use metrics::{group_by_error, percent_difference};
pub use model::{ReweightMethod, Themis, ThemisConfig};
pub use route::{DegradeReason, Explain, Route, RouteKind};
pub use session::{Analyzed, Answer, IngestReport, ThemisSession};
// Re-exported so server and CLI layers see the live-data types through one
// front door.
pub use themis_live::{IngestError, LiveSnapshot, LiveStats};
// Re-exported so session users configure the engine without importing
// themis-query directly.
pub use themis_query::{
    saturating_micros, CancelToken, EngineOptions, FaultPlan, Limits, QueryTrace, TraceSink,
    TraceSpan,
};
