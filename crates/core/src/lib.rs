//! # themis-core
//!
//! Themis: the first open-world database system (OW-DBMS) that automatically
//! rebalances arbitrarily biased samples to approximately answer queries as
//! if they were issued over the entire population (Orr, Balazinska, Suciu —
//! SIGMOD 2020).
//!
//! The data scientist inserts a biased sample `S` and a set of population
//! aggregates `Γ`, then asks queries; Themis builds a model `M(Γ, S)`
//! combining two debiasing techniques and routes each query to the right
//! one (§4.3):
//!
//! * a **reweighted sample** (uniform / constrained linear regression / IPF,
//!   see `themis-reweight`) — accurate for heavy hitters present in `S`,
//! * a **Bayesian network** over the population distribution (see
//!   `themis-bn`) — able to answer queries about tuples that are *not* in
//!   `S`, including when the sample's support differs from the population's.
//!
//! ```
//! use themis_core::{Themis, ThemisConfig};
//! use themis_aggregates::{AggregateResult, AggregateSet};
//! use themis_data::paper_example::{example_population, example_sample};
//! use themis_data::AttrId;
//!
//! let population = example_population(); // normally unavailable!
//! let aggregates = AggregateSet::from_results(vec![
//!     AggregateResult::compute(&population, &[AttrId(0)]),
//!     AggregateResult::compute(&population, &[AttrId(1), AttrId(2)]),
//! ]);
//! let themis = Themis::build(example_sample(), aggregates, 10.0, ThemisConfig::default());
//! // A point query over tuples missing from the sample still gets a
//! // non-trivial open-world answer.
//! let est = themis.point_query(&[AttrId(1), AttrId(2)], &[0, 2]);
//! assert!(est > 0.0);
//! ```

pub mod baselines;
pub mod metrics;
pub mod model;

pub use metrics::{group_by_error, percent_difference};
pub use model::{ReweightMethod, Themis, ThemisConfig};
