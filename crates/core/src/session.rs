//! The session query API: explicit engine configuration, answer
//! provenance, cached BN replicates, the plan-fingerprint answer cache,
//! and streaming ingest.
//!
//! A [`ThemisSession`] owns a built [`Themis`] model plus an
//! [`EngineOptions`], and is the intended way to *query* a model:
//!
//! * every answer is an [`Answer`] — the result plus the [`Route`] that
//!   produced it and the wall-clock time it took;
//! * [`ThemisSession::explain`] returns the routing decision without
//!   executing (and, by construction, cannot disagree with the route an
//!   actual execution takes: both call the same decision function — the
//!   same invariant covers the cache verdict, see below);
//! * the K forward-sample BN replicates (§4.2.4) are simulated **once** per
//!   world generation and reused by every hybrid / BN-only query instead of
//!   being re-simulated per call;
//! * query setup never deep-clones a relation: the reweighted sample and
//!   each cached replicate live behind [`Arc`], and binding them into a
//!   per-query catalog is a pointer bump.
//!
//! ## Live data
//!
//! The model lives behind a generation-counted [`Arc`] swap (a `World`).
//! Readers pin the current generation with one `Arc` bump and never block;
//! [`ThemisSession::ingest`] builds a successor world off to the side —
//! incrementally extending the IPF incidence matrix, relearning the BN, and
//! re-simulating replicates *only if the BN parameters actually moved* —
//! then swaps it in. In-flight queries finish on their pinned generation.
//!
//! An optional [`AnswerCache`] (off by default; see
//! [`ThemisSession::with_answer_cache`]) memoizes full answers by canonical
//! plan fingerprint. Hits hand back the stored result bit-identical to the
//! populating execution. Traced, fault-injected, and cancellable queries
//! bypass the cache entirely, and degraded answers never populate it.

use crate::error::ThemisError;
use crate::model::{ReweightMethod, Themis};
use crate::route::{self, Decision, Explain, Route};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};
use themis_aggregates::IncidenceMatrix;
use themis_data::{AttrId, GroupKey, Relation};
use themis_live::{plan_fingerprint, AnswerCache, Fingerprint, LiveSnapshot, LiveStats};
use themis_obs::Counter;
use themis_query::{
    EngineOptions, ExecError, FaultPlan, QueryResult, QueryTrace, TraceSink, Value,
};
use themis_reweight::{ipf_on_incidence, linreg_weights, uniform_weights};
use themis_sql::{Query, SelectItem};
use std::collections::HashMap;

/// A query result with its provenance: which debiasing component answered
/// ([`Route`]) and how long the query took.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result rows.
    pub result: QueryResult,
    /// Which component produced the answer (§4.3 routing).
    pub route: Route,
    /// Wall-clock time the query took, from parse to merged result.
    pub elapsed: Duration,
}

impl Answer {
    /// The single value of a scalar result (no groups, one aggregate);
    /// `None` if the shape doesn't match. Forwards to
    /// [`QueryResult::scalar`].
    pub fn scalar(&self) -> Option<f64> {
        self.result.scalar()
    }
}

/// `EXPLAIN ANALYZE` output: the executed [`Answer`] plus the
/// [`QueryTrace`] collected while producing it, and the router's group
/// cardinality estimate next to what actually came back.
///
/// Produced by [`ThemisSession::analyze`]. The answer is **bit-identical**
/// to what [`ThemisSession::sql`] returns for the same query and engine
/// options — tracing only observes, it never steers execution.
#[derive(Debug, Clone)]
pub struct Analyzed {
    /// The executed answer, identical to the untraced one.
    pub answer: Answer,
    /// The span tree collected during execution.
    pub trace: QueryTrace,
    /// Upper-bound estimate of the output group count before execution:
    /// the product of the grouping columns' domain sizes (1 for scalar
    /// queries; saturating).
    pub estimated_groups: u64,
    /// Groups actually returned (rows of the answer, after any `LIMIT`).
    pub actual_groups: u64,
}

/// What an ingest did — returned by [`ThemisSession::ingest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// The table name the batch was addressed to (the cache-invalidation
    /// tag; the session serves its one relation under any `FROM` name).
    pub table: String,
    /// Rows appended by this batch.
    pub rows_added: usize,
    /// Total sample rows after the ingest.
    pub sample_rows: usize,
    /// The new world generation.
    pub generation: u64,
    /// Whether the relearned BN's parameters (or the effective replicate
    /// size) moved — if so, replicates are re-simulated lazily.
    pub bn_moved: bool,
    /// Replicates carried over unchanged into the new generation (0 when
    /// the BN moved, or when none had been simulated yet).
    pub replicates_kept: usize,
    /// Cache entries eagerly dropped because their plan touches `table`.
    pub cache_entries_dropped: usize,
}

/// One immutable generation of the queryable world: the model plus its
/// lazily simulated replicates. Queries pin a generation with one `Arc`
/// bump and keep using it even while an ingest swaps in a successor.
#[derive(Debug)]
struct World {
    model: Arc<Themis>,
    generation: u64,
    /// Lazily simulated, then reused by every query against this
    /// generation. The simulation is deterministic in the model's seed, so
    /// caching changes latency, never answers.
    replicates: OnceLock<Vec<Arc<Relation>>>,
    /// Set when an ingest invalidated previously simulated replicates: the
    /// live counter to bump when the lazy re-simulation actually runs, so
    /// obs can assert "an ingest that moved nothing re-simulated nothing".
    resim_counter: Option<Arc<Counter>>,
    /// The IPF incidence matrix covering this generation's sample, carried
    /// by ingest-created worlds so the *next* ingest extends it instead of
    /// rebuilding from scratch.
    incidence: Option<IncidenceMatrix>,
}

impl World {
    /// The cached K forward-sample replicates (empty without a BN).
    fn replicates(&self) -> &[Arc<Relation>] {
        self.replicates.get_or_init(|| {
            let reps = route::simulate_replicates(&self.model);
            if let Some(counter) = &self.resim_counter {
                counter.add(reps.len() as u64);
            }
            reps
        })
    }
}

/// A query session over a built [`Themis`] model. See the module docs.
#[derive(Debug)]
pub struct ThemisSession {
    world: RwLock<Arc<World>>,
    engine: EngineOptions,
    /// `None` = answer cache disabled (the default — benches and the
    /// differential oracles run uncached).
    cache: Option<AnswerCache<Answer>>,
    live: LiveStats,
    /// Serializes ingests. Readers never take this lock: they pin the
    /// current world through the brief `RwLock` read guard in
    /// [`ThemisSession::pinned`].
    ingest_lock: Mutex<()>,
}

impl ThemisSession {
    /// Session with default engine options (hardware threads).
    pub fn new(model: Themis) -> Self {
        Self::with_engine(model, EngineOptions::default())
    }

    /// Session with explicit engine options.
    pub fn with_engine(model: Themis, engine: EngineOptions) -> Self {
        ThemisSession {
            world: RwLock::new(Arc::new(World {
                model: Arc::new(model),
                generation: 0,
                replicates: OnceLock::new(),
                resim_counter: None,
                incidence: None,
            })),
            engine,
            cache: None,
            live: LiveStats::new(),
            ingest_lock: Mutex::new(()),
        }
    }

    /// Builder form of [`ThemisSession::set_answer_cache`].
    pub fn with_answer_cache(mut self, entries: usize) -> Self {
        self.set_answer_cache(entries);
        self
    }

    /// Enable (or resize — existing contents are dropped) the answer
    /// cache, bounded at roughly `entries` answers.
    pub fn set_answer_cache(&mut self, entries: usize) {
        self.cache = Some(AnswerCache::new(entries));
        self.live.cache_entries.set(0);
    }

    /// Disable the answer cache and drop its contents.
    pub fn disable_answer_cache(&mut self) {
        self.cache = None;
        self.live.cache_entries.set(0);
    }

    /// Whether the answer cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The live-data metrics bundle (cache and ingest counters).
    pub fn live_stats(&self) -> &LiveStats {
        &self.live
    }

    /// A point-in-time copy of every live metric.
    pub fn live_snapshot(&self) -> LiveSnapshot {
        self.live.snapshot()
    }

    /// The current world generation (0 until the first ingest).
    pub fn generation(&self) -> u64 {
        self.pinned().generation
    }

    /// Pin the current world generation: the read lock is held only for an
    /// `Arc` bump, so queries never block behind an ingest swap.
    fn pinned(&self) -> Arc<World> {
        Arc::clone(
            &self
                .world
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// The underlying model — the current generation's. The handle stays
    /// valid (and unchanged) across later ingests.
    pub fn model(&self) -> Arc<Themis> {
        Arc::clone(&self.pinned().model)
    }

    /// Consume the session, handing the current generation's model back.
    pub fn into_model(self) -> Themis {
        let world = self
            .world
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let model = match Arc::try_unwrap(world) {
            Ok(w) => w.model,
            Err(shared) => Arc::clone(&shared.model),
        };
        Arc::try_unwrap(model).unwrap_or_else(|shared| (*shared).clone())
    }

    /// The engine configuration queries run with.
    pub fn engine(&self) -> &EngineOptions {
        &self.engine
    }

    /// Swap the engine configuration. The replicate cache is unaffected —
    /// replicates are model state, not engine state.
    pub fn set_engine(&mut self, engine: EngineOptions) {
        self.engine = engine;
    }

    /// Test-facing view of the current generation's replicates (forces the
    /// simulation).
    #[cfg(test)]
    fn replicates(&self) -> Vec<Arc<Relation>> {
        self.pinned().replicates().to_vec()
    }

    fn parse(sql: &str) -> Result<Query, ThemisError> {
        themis_sql::parse(sql)
            .map_err(|e| ThemisError::Exec(ExecError::Parse(e.to_string())))
    }

    /// Why a query must skip the answer cache, if it must. Feeds both
    /// execution ([`ThemisSession::sql_with`]) and
    /// [`ThemisSession::explain_with`] through
    /// [`ThemisSession::cache_fingerprint`] — the PR 3 invariant (explain
    /// and execution share one decision function) extended to the cache:
    ///
    /// * an enabled trace changes span structure on a hit, so traced
    ///   queries never consult or populate;
    /// * a fault plan makes execution diverge from any cached answer;
    /// * a cancel token can stop execution mid-way — a cached answer would
    ///   mask the cancellation.
    fn cache_bypass(engine: &EngineOptions) -> Option<&'static str> {
        if engine.trace.is_enabled() {
            Some("trace")
        } else if engine.fault_plan != FaultPlan::None {
            Some("fault-plan")
        } else if engine.cancel.is_some() {
            Some("cancel")
        } else {
            None
        }
    }

    /// The one cache-probe decision: `None` when the cache is off or the
    /// engine options force a bypass, otherwise the fingerprint both
    /// execution and explain key on.
    fn cache_fingerprint(
        &self,
        world: &World,
        query: &Query,
        engine: &EngineOptions,
    ) -> Option<Fingerprint> {
        self.cache.as_ref()?;
        if Self::cache_bypass(engine).is_some() {
            return None;
        }
        Some(plan_fingerprint(query, &engine.limits, world.generation))
    }

    /// Run a SQL query with §4.3 routing: in-sample point queries and plain
    /// scalar aggregates answer from the reweighted sample, missing-tuple
    /// point queries fall back to direct BN inference, and grouped queries
    /// take the hybrid union of sample groups and BN-replicate consensus
    /// groups. The FROM table name(s) are bound to the reweighted sample.
    pub fn sql(&self, sql: &str) -> Result<Answer, ThemisError> {
        self.sql_with(sql, &self.engine)
    }

    /// [`ThemisSession::sql`] with explicit per-call engine options instead
    /// of the session's own.
    ///
    /// This is what lets one session be *shared*: a server holds a single
    /// `Arc<ThemisSession>` (one model, one replicate cache — the expensive
    /// simulation paid exactly once) while every connection carries its own
    /// [`EngineOptions`] — per-connection deadlines, budgets, cancel token,
    /// and thread width — passed here per query. `&self` only: concurrent
    /// callers never contend on session state.
    pub fn sql_with(&self, sql: &str, engine: &EngineOptions) -> Result<Answer, ThemisError> {
        let start = Instant::now();
        let world = self.pinned();
        // One probe decision, shared with explain: None = cache off or
        // bypassed, Some = the key to consult and (on a miss) populate.
        let fingerprint = match &self.cache {
            None => None,
            Some(_) => match Self::cache_bypass(engine) {
                Some(_reason) => {
                    self.live.cache_bypasses.inc();
                    None
                }
                None => {
                    let query = Self::parse(sql)?;
                    self.cache_fingerprint(&world, &query, engine)
                }
            },
        };
        if let (Some(cache), Some(fp)) = (&self.cache, &fingerprint) {
            if let Some(hit) = cache.get(fp) {
                self.live.cache_hits.inc();
                // The stored result/route are returned untransformed —
                // bit-identical to the execution that populated the entry.
                return Ok(Answer {
                    result: hit.result.clone(),
                    route: hit.route.clone(),
                    elapsed: start.elapsed(),
                });
            }
            self.live.cache_misses.inc();
        }
        let (_, result, route) = self.routed(&world, sql, engine)?;
        let answer = Answer {
            result,
            route,
            elapsed: start.elapsed(),
        };
        if let (Some(cache), Some(fp)) = (&self.cache, &fingerprint) {
            // A governance-tripped (degraded) answer is not the plan's true
            // answer; it must never be served to an untripped caller.
            if answer.route.degraded().is_none() {
                let evicted = cache.insert(fp, Arc::new(answer.clone()));
                self.live.cache_evictions.add(evicted as u64);
                self.live.cache_entries.set(cache.len() as u64);
            }
        }
        Ok(answer)
    }

    /// The one routed execution path behind [`ThemisSession::sql_with`] and
    /// [`ThemisSession::analyze_with`]: parse, decide, execute. Spans go to
    /// `engine.trace` (no-ops on the default disabled sink), and tracing
    /// never touches the result — both entry points produce bit-identical
    /// answers.
    fn routed(
        &self,
        world: &World,
        sql: &str,
        engine: &EngineOptions,
    ) -> Result<(Query, QueryResult, Route), ThemisError> {
        let trace = &engine.trace;
        let _query_span = trace.span("query");
        let query = {
            let _span = trace.span("parse");
            Self::parse(sql)?
        };
        if trace.is_enabled() && self.cache.is_some() {
            // Traced queries bypass the answer cache (see
            // `cache_bypass`); record that on the span so EXPLAIN ANALYZE
            // output explains why a hot query still executed.
            trace.note("cache", "bypass");
        }
        let decision = {
            let _span = trace.span("route");
            let decision = route::decide(&world.model, &query);
            if trace.is_enabled() {
                let kind = match &decision {
                    Decision::Sample { .. } => "sample",
                    Decision::BnPoint { .. } => "bn_point",
                    Decision::Hybrid { .. } => "hybrid",
                };
                trace.note("decision", kind);
                if matches!(decision, Decision::Hybrid { .. }) {
                    // Observed *before* `world.replicates()` forces the
                    // cache below, so the note reflects whether this query
                    // pays the simulation or reuses it.
                    let cache = if world.replicates.get().is_some() {
                        "hit"
                    } else {
                        "miss"
                    };
                    trace.note("replicate_cache", cache);
                }
            }
            decision
        };
        let (result, route) = match decision {
            Decision::Sample { .. } => (
                route::run_on(world.model.sample_arc(), &query, engine)?,
                Route::Sample,
            ),
            Decision::BnPoint {
                attrs,
                values,
                column,
                ..
            } => {
                let _span = trace.span("bn_point");
                (
                    route::bn_point_result(&world.model, &attrs, &values, column)?,
                    Route::BayesNet { k_agreed: 0 },
                )
            }
            Decision::Hybrid { .. } => route::hybrid_sql(
                world.model.sample_arc(),
                &query,
                engine,
                world.replicates(),
            )?,
        };
        Ok((query, result, route))
    }

    /// `EXPLAIN ANALYZE`: run `sql` exactly as [`ThemisSession::sql`] would
    /// — same routing, same engine, bit-identical answer — while collecting
    /// a [`QueryTrace`] of the execution, and compare the router's group
    /// estimate with what actually came back.
    pub fn analyze(&self, sql: &str) -> Result<Analyzed, ThemisError> {
        self.analyze_with(sql, &self.engine)
    }

    /// [`ThemisSession::analyze`] with explicit per-call engine options.
    /// Any sink already present in `engine` is ignored: analysis always
    /// collects into its own fresh sink.
    pub fn analyze_with(&self, sql: &str, engine: &EngineOptions) -> Result<Analyzed, ThemisError> {
        let sink = TraceSink::enabled();
        let mut traced_engine = engine.clone();
        traced_engine.trace = sink.clone();
        let start = Instant::now();
        let world = self.pinned();
        let (query, result, route) = self.routed(&world, sql, &traced_engine)?;
        let elapsed = start.elapsed();
        let trace = sink.finish();
        let estimated_groups = Self::estimated_groups(&world.model, &query);
        let actual_groups = result.rows.len() as u64;
        Ok(Analyzed {
            answer: Answer {
                result,
                route,
                elapsed,
            },
            trace,
            estimated_groups,
            actual_groups,
        })
    }

    /// Upper bound on a query's output group count, from the sample
    /// schema: the product of the distinct grouping columns' domain sizes.
    /// Scalar queries estimate 1; unknown columns contribute nothing (the
    /// engine rejects them later anyway).
    fn estimated_groups(model: &Themis, query: &Query) -> u64 {
        let schema = model.reweighted_sample().schema();
        let mut seen: Vec<String> = Vec::new();
        let mut estimate: u64 = 1;
        let bare_columns = query.select.iter().filter_map(|item| match item {
            SelectItem::Column(c) => Some(c),
            _ => None,
        });
        for col in query.group_by.iter().chain(bare_columns) {
            let lower = col.column.to_ascii_lowercase();
            if seen.contains(&lower) {
                continue;
            }
            seen.push(lower);
            if let Some(attr) = schema.attr_id(&col.column) {
                estimate = estimate.saturating_mul(schema.domain(attr).size() as u64);
            }
        }
        estimate
    }

    /// The routing decision for `sql`, without executing it. The returned
    /// [`Explain`] also predicts degradation: under armed limits or a fault
    /// plan, a hybrid route reports `degrades_to = Some(Sample)` — the route
    /// a tripped BN phase falls back to.
    pub fn explain(&self, sql: &str) -> Result<Explain, ThemisError> {
        self.explain_with(sql, &self.engine)
    }

    /// [`ThemisSession::explain`] with explicit per-call engine options (the
    /// degradation prediction depends on which limits are armed, so a shared
    /// session must explain against the *caller's* options).
    pub fn explain_with(&self, sql: &str, engine: &EngineOptions) -> Result<Explain, ThemisError> {
        let world = self.pinned();
        let query = Self::parse(sql)?;
        let mut explain = route::decide(&world.model, &query).explain(engine);
        // The cache verdict comes from the same probe function execution
        // uses (`cache_fingerprint`), so explain cannot promise a hit that
        // `sql` would miss or vice versa. `contains` deliberately skips the
        // LRU epoch bump: explaining a query must not keep it resident.
        explain.cached = self
            .cache_fingerprint(&world, &query, engine)
            .and_then(|fp| self.cache.as_ref().map(|c| c.contains(&fp)));
        Ok(explain)
    }

    /// SQL over the reweighted sample only (no routing, no BN) — the
    /// behaviour of the pure reweighting baselines.
    pub fn sql_sample_only(&self, sql: &str) -> Result<Answer, ThemisError> {
        self.sql_sample_only_with(sql, &self.engine)
    }

    /// [`ThemisSession::sql_sample_only`] with explicit per-call engine
    /// options.
    pub fn sql_sample_only_with(
        &self,
        sql: &str,
        engine: &EngineOptions,
    ) -> Result<Answer, ThemisError> {
        let start = Instant::now();
        let world = self.pinned();
        let query = Self::parse(sql)?;
        let result = route::run_on(world.model.sample_arc(), &query, engine)?;
        Ok(Answer {
            result,
            route: Route::Sample,
            elapsed: start.elapsed(),
        })
    }

    /// SQL answered by the BN alone (§4.2.4 generalized): the query runs on
    /// each cached replicate; groups present in *all* replicates are
    /// returned with averaged values.
    pub fn sql_bn_only(&self, sql: &str) -> Result<Answer, ThemisError> {
        self.sql_bn_only_with(sql, &self.engine)
    }

    /// [`ThemisSession::sql_bn_only`] with explicit per-call engine options.
    pub fn sql_bn_only_with(
        &self,
        sql: &str,
        engine: &EngineOptions,
    ) -> Result<Answer, ThemisError> {
        let start = Instant::now();
        let world = self.pinned();
        if world.model.bayesian_network().is_none() {
            return Err(ThemisError::NoBayesNet);
        }
        let query = Self::parse(sql)?;
        let result = route::bn_only_sql(&query, engine, world.replicates())?;
        let k_agreed = world.replicates().len();
        Ok(Answer {
            result,
            route: Route::BayesNet { k_agreed },
            elapsed: start.elapsed(),
        })
    }

    /// Hybrid point query (§4.3) as an [`Answer`]: if the tuple exists in
    /// the sample, `SUM(weight)` answers; otherwise direct BN inference
    /// (`n · Pr`), or 0 without a BN.
    pub fn point_query(&self, attrs: &[AttrId], values: &[u32]) -> Answer {
        let start = Instant::now();
        let world = self.pinned();
        let sample = world.model.reweighted_sample();
        let (est, route) = if sample.contains_point(attrs, values) {
            (
                world.model.point_query_sample(attrs, values),
                Route::Sample,
            )
        } else {
            match world.model.point_query_bn(attrs, values) {
                Ok(est) => (est, Route::BayesNet { k_agreed: 0 }),
                // No BN to fall back on: the closed-sample answer for an
                // unseen point is zero.
                Err(_) => (0.0, Route::Sample),
            }
        };
        Answer {
            result: QueryResult {
                columns: vec!["COUNT(*)".into()],
                rows: vec![vec![Value::Num(est)]],
                group_arity: 0,
            },
            route,
            elapsed: start.elapsed(),
        }
    }

    /// Hybrid `GROUP BY attrs, COUNT(*)` over the cached replicates,
    /// returning the group counts plus the route that produced them.
    pub fn group_by(&self, attrs: &[AttrId]) -> (HashMap<GroupKey, f64>, Route) {
        let world = self.pinned();
        route::hybrid_group_by(world.model.reweighted_sample(), attrs, world.replicates())
    }

    /// Append labeled rows to the registered relation, rebuilding the model
    /// incrementally and swapping in a new world generation. `&self`:
    /// concurrent readers keep answering on their pinned generation and
    /// never block.
    ///
    /// Semantics, in order:
    ///
    /// 1. the whole batch is validated first — a bad row rejects the batch
    ///    and the world is untouched;
    /// 2. weights are recomputed exactly as [`Themis::build`] would on the
    ///    grown sample (under IPF the incidence matrix is *extended* by the
    ///    appended rows, which is provably identical to rebuilding it, so
    ///    the weights are bit-identical to a cold build);
    /// 3. the BN is relearned on the reweighted grown sample; replicates
    ///    are re-simulated (lazily, on next use) **only** when the BN
    ///    parameters or the effective replicate size moved — otherwise the
    ///    old replicates are carried over and `live.ingest.replicates_kept`
    ///    records it;
    /// 4. the new world swaps in with `generation + 1`, and only answer
    ///    cache entries whose fingerprint touches `table` are dropped
    ///    (every other old entry is already unreachable — fingerprints
    ///    carry the generation — and ages out by LRU).
    ///
    /// `table` is an invalidation tag, not a catalog lookup: the session
    /// serves its single relation under any `FROM` name.
    pub fn ingest(&self, table: &str, rows: &[Vec<String>]) -> Result<IngestReport, ThemisError> {
        // One writer at a time; readers never take this lock.
        let _writer = self
            .ingest_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let old = self.pinned();
        let config = old.model.config().clone();
        let population_size = old.model.population_size();
        let aggregates = old.model.aggregates().clone();
        let mut grown = themis_live::grow_relation(old.model.reweighted_sample(), rows)?;

        let mut ipf_report = None;
        let mut incidence = None;
        let weights = match &config.reweighting {
            ReweightMethod::Uniform => uniform_weights(&grown, population_size),
            ReweightMethod::LinReg(opts) => {
                linreg_weights(&grown, &aggregates, population_size, opts).0
            }
            ReweightMethod::Ipf(opts) => {
                // Incremental marginals: extend the previous incidence
                // matrix by the appended rows (appended indices are
                // strictly larger, so the extension reproduces a cold
                // `IncidenceMatrix::build` exactly) and sweep IPF over it —
                // the weights come out bit-identical to a cold build on the
                // grown sample.
                let mut matrix = match &old.incidence {
                    Some(m) => m.clone(),
                    None => IncidenceMatrix::build(old.model.reweighted_sample(), &aggregates),
                };
                matrix.extend(&grown, &aggregates);
                let (w, report) = ipf_on_incidence(&matrix, grown.len(), opts);
                ipf_report = Some(report);
                incidence = Some(matrix);
                w
            }
        };
        grown.set_weights(weights);

        // Relearn the BN with the same step order as `Themis::build`:
        // weights first, then learn on the reweighted sample.
        let bn = config.bn_mode.map(|mode| {
            themis_bn::learn(&grown, &aggregates, population_size, mode, &config.bn_options)
        });

        // Replicates depend on exactly three inputs: the BN parameters, the
        // effective replicate size, and the fixed seed. Re-simulate iff one
        // of the first two moved.
        let old_len = old.model.reweighted_sample().len();
        let size_moved = config.bn_sample_size.is_none() && grown.len() != old_len;
        let bn_moved = size_moved
            || themis_live::bn_parameters_moved(old.model.bayesian_network(), bn.as_ref());

        let replicates = OnceLock::new();
        let mut resim_counter = None;
        let mut replicates_kept = 0usize;
        if bn_moved {
            // Invalidated. If replicates had been simulated (or were
            // already pending re-simulation), the next lazy simulation is a
            // *re*-simulation and must be counted.
            if old.replicates.get().is_some() || old.resim_counter.is_some() {
                resim_counter = Some(Arc::clone(&self.live.replicates_resimulated));
            }
        } else {
            match old.replicates.get() {
                Some(reps) => {
                    replicates_kept = reps.len();
                    let _ = replicates.set(reps.clone());
                    self.live.replicates_kept.add(replicates_kept as u64);
                }
                // Never simulated: carry forward any pending
                // re-simulation debt from an earlier invalidating ingest.
                None => resim_counter = old.resim_counter.clone(),
            }
        }

        let sample_rows = grown.len();
        let model = Themis::from_parts(
            grown,
            aggregates,
            population_size,
            bn,
            config,
            ipf_report,
        );
        let generation = old.generation + 1;
        let world = Arc::new(World {
            model: Arc::new(model),
            generation,
            replicates,
            resim_counter,
            incidence,
        });
        *self
            .world
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = world;

        // Selective invalidation: drop only entries whose plan touches the
        // mutated table. Other old-generation entries can never be served
        // (the fingerprint carries the generation) and age out by LRU.
        let cache_entries_dropped = match &self.cache {
            Some(cache) => {
                let dropped = cache.invalidate_table(table);
                self.live.cache_invalidations.add(dropped as u64);
                self.live.cache_entries.set(cache.len() as u64);
                dropped
            }
            None => 0,
        };
        self.live.ingest_batches.inc();
        self.live.ingest_rows.add(rows.len() as u64);
        self.live.generation.set(generation);

        Ok(IngestReport {
            table: table.to_string(),
            rows_added: rows.len(),
            sample_rows,
            generation,
            bn_moved,
            replicates_kept,
            cache_entries_dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ThemisConfig;
    use crate::route::RouteKind;
    use themis_aggregates::{AggregateResult, AggregateSet};
    use themis_data::paper_example::{example_population, example_sample};

    fn paper_session(config: ThemisConfig) -> ThemisSession {
        let p = example_population();
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        ThemisSession::new(Themis::build(example_sample(), aggregates, 10.0, config))
    }

    fn open_world_session() -> ThemisSession {
        paper_session(ThemisConfig {
            bn_sample_size: Some(4_000),
            ..ThemisConfig::default()
        })
    }

    #[test]
    fn in_sample_point_query_routes_to_sample_and_explain_agrees() {
        let s = open_world_session();
        // NC→NY is in the sample.
        let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'NC' AND d_st = 'NY'";
        let answer = s.sql(sql).unwrap();
        assert_eq!(answer.route, Route::Sample);
        assert_eq!(s.explain(sql).unwrap().route, answer.route.kind());
        // Same value the sample-only path computes.
        let direct = s.model().point_query_sample(&[AttrId(1), AttrId(2)], &[1, 2]);
        assert!((answer.scalar().unwrap() - direct).abs() < 1e-9);
    }

    #[test]
    fn missing_tuple_point_query_routes_to_bn_and_explain_agrees() {
        let s = open_world_session();
        // FL→NY exists in the population but not in the sample.
        let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'";
        assert_eq!(s.explain(sql).unwrap().route, RouteKind::BayesNet);
        let answer = s.sql(sql).unwrap();
        assert_eq!(answer.route, Route::BayesNet { k_agreed: 0 });
        let est = answer.scalar().unwrap();
        assert!(est > 0.0, "open-world estimate must be positive, got {est}");
        // Agrees with the model-level hybrid point query.
        let direct = s.model().point_query(&[AttrId(1), AttrId(2)], &[0, 2]);
        assert!((est - direct).abs() < 1e-12);
        // And the aliased spelling keeps its alias as the column name.
        let aliased = s
            .sql("SELECT COUNT(*) AS n FROM flights WHERE o_st = 'FL' AND d_st = 'NY'")
            .unwrap();
        assert_eq!(aliased.result.columns, vec!["n"]);
    }

    #[test]
    fn open_world_group_by_routes_hybrid_with_added_groups() {
        let s = open_world_session();
        let sql = "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st";
        assert_eq!(s.explain(sql).unwrap().route, RouteKind::Hybrid);
        let answer = s.sql(sql).unwrap();
        let Route::Hybrid {
            sample_groups,
            bn_groups_added,
        } = answer.route
        else {
            panic!("expected hybrid route, got {:?}", answer.route);
        };
        assert_eq!(
            sample_groups,
            s.sql_sample_only(sql).unwrap().result.rows.len()
        );
        assert!(
            bn_groups_added > 0,
            "BN must add open-world groups on the paper example"
        );
        assert_eq!(answer.result.rows.len(), sample_groups + bn_groups_added);
        // Merged output stays sorted by the group prefix.
        let rows = &answer.result.rows;
        for w in rows.windows(2) {
            assert_ne!(
                themis_query::cmp_group_prefix(&w[0], &w[1], answer.result.group_arity),
                std::cmp::Ordering::Greater,
                "rows out of order"
            );
        }
    }

    #[test]
    fn scalar_aggregates_route_to_sample() {
        let s = open_world_session();
        let sql = "SELECT COUNT(*) FROM flights WHERE date <= 1";
        assert_eq!(s.explain(sql).unwrap().route, RouteKind::Sample);
        assert_eq!(s.sql(sql).unwrap().route, Route::Sample);
        // An unknown label cannot be a BN point: sample answers 0.
        let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'ZZ'";
        assert_eq!(s.explain(sql).unwrap().route, RouteKind::Sample);
        assert_eq!(s.sql(sql).unwrap().scalar(), Some(0.0));
    }

    #[test]
    fn without_bn_everything_routes_to_sample() {
        let s = paper_session(ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        });
        for sql in [
            "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'",
            "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st",
        ] {
            assert_eq!(s.explain(sql).unwrap().route, RouteKind::Sample, "{sql}");
            assert_eq!(s.sql(sql).unwrap().route, Route::Sample, "{sql}");
        }
        assert!(matches!(
            s.sql_bn_only("SELECT COUNT(*) FROM flights"),
            Err(ThemisError::NoBayesNet)
        ));
    }

    #[test]
    fn bn_only_sql_reports_replicate_agreement() {
        let s = open_world_session();
        let answer = s
            .sql_bn_only("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st")
            .unwrap();
        assert_eq!(answer.route, Route::BayesNet { k_agreed: 10 });
        assert!(!answer.result.rows.is_empty());
    }

    #[test]
    fn parse_and_exec_errors_are_themis_errors_not_panics() {
        let s = open_world_session();
        assert!(matches!(
            s.sql("SELEKT nope"),
            Err(ThemisError::Exec(ExecError::Parse(_)))
        ));
        assert!(matches!(
            s.sql("SELECT COUNT(*) FROM flights WHERE nope = 1"),
            Err(ThemisError::Exec(ExecError::UnknownColumn(_)))
        ));
        assert!(matches!(
            s.explain("SELEKT nope"),
            Err(ThemisError::Exec(ExecError::Parse(_)))
        ));
    }

    #[test]
    fn replicates_are_simulated_once_and_reused() {
        let s = open_world_session();
        s.sql("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st").unwrap();
        let first: Vec<*const Relation> = s
            .replicates()
            .iter()
            .map(Arc::as_ptr)
            .collect();
        s.sql("SELECT d_st, COUNT(*) FROM flights GROUP BY d_st").unwrap();
        let second: Vec<*const Relation> = s
            .replicates()
            .iter()
            .map(Arc::as_ptr)
            .collect();
        assert_eq!(first, second, "cache must hand back the same replicates");
        assert_eq!(first.len(), 10, "default K");
    }

    #[test]
    fn session_group_by_matches_model_group_by() {
        let s = open_world_session();
        let attrs = [AttrId(1), AttrId(2)];
        let (groups, route) = s.group_by(&attrs);
        assert_eq!(groups, s.model().group_by(&attrs));
        let Route::Hybrid { sample_groups, .. } = route else {
            panic!("hybrid expected");
        };
        assert_eq!(
            sample_groups,
            s.model().reweighted_sample().group_counts(&attrs).len()
        );
    }

    #[test]
    fn queries_never_deep_clone_the_sample() {
        let s = open_world_session();
        let sample = Arc::clone(s.model().sample_arc());
        let before = Arc::strong_count(&sample);
        s.sql("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st").unwrap();
        s.sql("SELECT COUNT(*) FROM flights t, flights s WHERE t.d_st = s.o_st")
            .unwrap();
        s.sql_sample_only("SELECT COUNT(*) FROM flights").unwrap();
        // Per-query catalogs take Arc bumps and release them; nothing holds
        // (or copied) the sample afterwards.
        assert_eq!(Arc::strong_count(&sample), before);
        // The same holds for every cached replicate across repeated queries.
        let replicate = Arc::clone(&s.replicates()[0]);
        let before = Arc::strong_count(&replicate);
        s.sql("SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st")
            .unwrap();
        assert_eq!(Arc::strong_count(&replicate), before);
    }

    #[test]
    fn point_query_answers_carry_routes() {
        let s = open_world_session();
        let attrs = [AttrId(1), AttrId(2)];
        assert_eq!(s.point_query(&attrs, &[1, 2]).route, Route::Sample);
        assert_eq!(
            s.point_query(&attrs, &[0, 2]).route,
            Route::BayesNet { k_agreed: 0 }
        );
        let no_bn = paper_session(ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        });
        let answer = no_bn.point_query(&attrs, &[0, 2]);
        assert_eq!(answer.route, Route::Sample);
        assert_eq!(answer.scalar(), Some(0.0));
    }

    #[test]
    fn bogus_table_qualifiers_never_route_to_the_bn() {
        let s = open_world_session();
        // FL→NY misses the sample, but the qualifier names no FROM binding:
        // the engine must reject this identically to the in-sample case,
        // instead of the point router silently answering it.
        for sql in [
            "SELECT COUNT(*) FROM flights WHERE bogus.o_st = 'FL' AND bogus.d_st = 'NY'",
            "SELECT COUNT(*) FROM flights WHERE bogus.o_st = 'NC' AND bogus.d_st = 'NY'",
        ] {
            assert!(
                matches!(
                    s.sql(sql),
                    Err(ThemisError::Exec(ExecError::UnknownColumn(_)))
                ),
                "{sql}"
            );
        }
        // A qualifier that names the FROM alias still point-routes.
        let ok = s
            .sql("SELECT COUNT(*) FROM flights f WHERE f.o_st = 'FL' AND f.d_st = 'NY'")
            .unwrap();
        assert_eq!(ok.route, Route::BayesNet { k_agreed: 0 });
    }

    #[test]
    fn hybrid_limit_ranks_merged_groups_without_shadowing_sample_counts() {
        let s = open_world_session();
        let full_sql = "SELECT o_st, d_st, COUNT(*) AS n FROM flights GROUP BY o_st, d_st";
        let limited_sql = format!("{full_sql} ORDER BY n DESC LIMIT 2");
        let full = s.sql(full_sql).unwrap();
        let limited = s.sql(&limited_sql).unwrap();
        // The route metadata reflects the *untruncated* union...
        assert_eq!(limited.route, full.route);
        // ...and the limited rows are exactly the top of the merged result,
        // so every surviving group keeps the value the full answer gave it
        // (a sample group cut by LIMIT is never re-added with a BN value).
        assert_eq!(limited.result.rows.len(), 2);
        let full_map = full.result.to_map();
        for (group, vals) in limited.result.to_map() {
            assert_eq!(full_map[&group], vals, "group {group:?}");
        }
    }

    #[test]
    fn bn_only_sql_honours_order_by_and_limit() {
        let s = open_world_session();
        let answer = s
            .sql_bn_only("SELECT o_st, COUNT(*) AS n FROM flights GROUP BY o_st ORDER BY n DESC LIMIT 2")
            .unwrap();
        assert_eq!(answer.result.rows.len(), 2);
        let ns: Vec<f64> = answer
            .result
            .rows
            .iter()
            .map(|row| match row[1] {
                Value::Num(v) => v,
                _ => panic!("aggregate cell"),
            })
            .collect();
        assert!(ns[0] >= ns[1], "rows must be ordered by n DESC: {ns:?}");
        // And the unknown-ORDER-BY error still surfaces like the engine's.
        assert!(matches!(
            s.sql_bn_only("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st ORDER BY nope"),
            Err(ThemisError::Exec(ExecError::UnknownColumn(_)))
        ));
    }

    #[test]
    fn row_budget_degrades_hybrid_to_its_sample_part_and_explain_predicts_it() {
        use themis_query::Limits;
        let mut s = open_world_session();
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        let sample_part = s.sql_sample_only(sql).unwrap().result.to_map();
        // Unlimited: no degradation predicted, none happens.
        let plain = s.explain(sql).unwrap();
        assert_eq!(plain.degrades_to, None);
        assert!(matches!(s.sql(sql).unwrap().route, Route::Hybrid { .. }));
        // A row budget the 4-row sample passes but every 4000-row BN
        // replicate trips.
        s.set_engine(EngineOptions {
            limits: Limits {
                max_rows: Some(100),
                ..Limits::default()
            },
            ..EngineOptions::default()
        });
        let predicted = s.explain(sql).unwrap();
        assert_eq!(predicted.route, RouteKind::Hybrid);
        assert_eq!(predicted.degrades_to, Some(RouteKind::Sample));
        assert!(predicted.to_string().contains("degrades to Sample"));
        let answer = s.sql(sql).unwrap();
        assert_eq!(
            answer.route,
            Route::Degraded {
                planned: RouteKind::Hybrid,
                reason: crate::route::DegradeReason::RowBudgetExceeded,
            }
        );
        // A degraded answer is exactly the sample part — debiased for every
        // group the sample covers, minus the BN's open-world additions.
        assert_eq!(answer.route.kind(), RouteKind::Sample);
        assert_eq!(answer.route.planned_kind(), RouteKind::Hybrid);
        assert_eq!(answer.result.to_map(), sample_part);
        // Scalar queries have no BN phase: nothing to degrade even with
        // limits armed.
        let scalar = s.explain("SELECT COUNT(*) FROM flights").unwrap();
        assert_eq!(scalar.degrades_to, None);
    }

    #[test]
    fn contained_worker_panic_degrades_instead_of_aborting() {
        use themis_query::FaultPlan;
        let mut s = open_world_session();
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        // Morsel 1 only exists on the 4000-row replicates (morsel_rows
        // defaults to 2048); the 4-row sample never reaches it.
        s.set_engine(EngineOptions {
            fault_plan: FaultPlan::PanicAtMorsel { morsel: 1 },
            ..EngineOptions::default()
        });
        assert_eq!(s.explain(sql).unwrap().degrades_to, Some(RouteKind::Sample));
        let answer = s.sql(sql).unwrap();
        assert_eq!(
            answer.route.degraded(),
            Some(crate::route::DegradeReason::WorkerFailure)
        );
        assert!(!answer.result.rows.is_empty());
    }

    #[test]
    fn slow_bn_phase_degrades_on_deadline() {
        use std::time::Duration;
        use themis_query::{FaultPlan, Limits};
        let mut s = open_world_session();
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        // The injected stall sits on morsel 1, which only the replicates
        // have: the sample part finishes far inside the deadline, the BN
        // phase provably exceeds it.
        s.set_engine(EngineOptions {
            limits: Limits {
                deadline: Some(Duration::from_millis(50)),
                ..Limits::default()
            },
            fault_plan: FaultPlan::SlowMorsel {
                morsel: 1,
                delay: Duration::from_millis(200),
            },
            ..EngineOptions::default()
        });
        let answer = s.sql(sql).unwrap();
        assert_eq!(
            answer.route,
            Route::Degraded {
                planned: RouteKind::Hybrid,
                reason: crate::route::DegradeReason::DeadlineExceeded,
            }
        );
        assert!(answer
            .route
            .to_string()
            .contains("degraded from Hybrid: deadline exceeded"));
    }

    #[test]
    fn cancellation_stops_the_query_rather_than_degrading_it() {
        use themis_query::{CancelToken, Trip};
        let mut s = open_world_session();
        let cancel = CancelToken::new();
        cancel.cancel();
        s.set_engine(EngineOptions {
            cancel: Some(cancel),
            ..EngineOptions::default()
        });
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        // A cancel token alone predicts no degradation...
        assert_eq!(s.explain(sql).unwrap().degrades_to, None);
        // ...and a cancelled query is an error, never a partial answer.
        assert!(matches!(
            s.sql(sql),
            Err(ThemisError::Exec(ExecError::Governed(Trip::Cancelled)))
        ));
    }

    #[test]
    fn engine_options_are_session_state() {
        let mut s = open_world_session();
        s.set_engine(EngineOptions {
            threads: 2,
            morsel_rows: 64,
            ..EngineOptions::default()
        });
        assert_eq!(s.engine().threads, 2);
        let a = s.sql("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st").unwrap();
        assert!(!a.result.rows.is_empty());
    }

    fn live_session() -> ThemisSession {
        open_world_session().with_answer_cache(32)
    }

    fn rows(labels: &[[&str; 3]]) -> Vec<Vec<String>> {
        labels
            .iter()
            .map(|row| row.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn cache_hits_serve_bit_identical_answers_and_are_counted() {
        let s = live_session();
        let sql = "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st";
        let cold = s.sql(sql).unwrap();
        let snap = s.live_snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (0, 1));
        assert_eq!(snap.cache_entries, 1);
        let hit = s.sql(sql).unwrap();
        assert_eq!(hit.result, cold.result);
        assert_eq!(hit.route, cold.route);
        let snap = s.live_snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        // A different plan is its own entry, not a collision.
        s.sql("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st").unwrap();
        assert_eq!(s.live_snapshot().cache_entries, 2);
    }

    #[test]
    fn explain_reports_cache_state_from_the_same_probe() {
        let s = live_session();
        let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'NC'";
        assert_eq!(s.explain(sql).unwrap().cached, Some(false));
        s.sql(sql).unwrap();
        let explain = s.explain(sql).unwrap();
        assert_eq!(explain.cached, Some(true));
        assert!(explain.to_string().ends_with("[cached]"));
        // The probe itself never perturbs the hit/miss counters.
        let snap = s.live_snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (0, 1));
        // With the cache off, explain reports no cache opinion at all.
        let off = open_world_session();
        assert_eq!(off.explain(sql).unwrap().cached, None);
    }

    #[test]
    fn traced_and_fault_injected_queries_bypass_the_cache() {
        use themis_query::{FaultPlan, TraceSink};
        let mut s = live_session();
        let sql = "SELECT COUNT(*) FROM flights";
        s.set_engine(EngineOptions {
            trace: TraceSink::enabled(),
            ..EngineOptions::default()
        });
        s.sql(sql).unwrap();
        s.sql(sql).unwrap();
        assert_eq!(s.explain(sql).unwrap().cached, None);
        let snap = s.live_snapshot();
        assert_eq!(snap.cache_bypasses, 2);
        assert_eq!((snap.cache_hits, snap.cache_misses, snap.cache_entries), (0, 0, 0));
        // Fault-injected runs are equally invisible to the cache.
        s.set_engine(EngineOptions {
            fault_plan: FaultPlan::PanicAtMorsel { morsel: 1_000_000 },
            ..EngineOptions::default()
        });
        s.sql(sql).unwrap();
        let snap = s.live_snapshot();
        assert_eq!(snap.cache_bypasses, 3);
        assert_eq!(snap.cache_entries, 0);
    }

    #[test]
    fn degraded_answers_are_never_cached() {
        use themis_query::Limits;
        let mut s = live_session();
        s.set_engine(EngineOptions {
            limits: Limits {
                max_rows: Some(100),
                ..Limits::default()
            },
            ..EngineOptions::default()
        });
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        for _ in 0..2 {
            let answer = s.sql(sql).unwrap();
            assert!(answer.route.degraded().is_some());
        }
        let snap = s.live_snapshot();
        // Both runs consulted the cache (limits are not a bypass — they are
        // part of the fingerprint), but the degraded answer never populated.
        assert_eq!((snap.cache_hits, snap.cache_misses), (0, 2));
        assert_eq!(snap.cache_entries, 0);
    }

    #[test]
    fn ingest_matches_a_cold_build_bit_identically() {
        let appended = [["01", "NY", "FL"], ["02", "FL", "NY"]];
        let queries = [
            "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'",
            "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st",
            "SELECT COUNT(*) FROM flights WHERE date <= 1",
        ];
        let s = live_session();
        // Warm the cache pre-ingest so a stale hit would be caught below.
        for sql in &queries {
            s.sql(sql).unwrap();
        }
        let report = s.ingest("flights", &rows(&appended)).unwrap();
        assert_eq!(report.rows_added, 2);
        assert_eq!(report.sample_rows, 6);
        assert_eq!(report.generation, 1);
        assert_eq!(s.generation(), 1);
        // A cold session built from scratch on the grown sample.
        let mut grown = example_sample();
        for row in &appended {
            grown.push_row_labels(row);
        }
        let p = example_population();
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        let cold = ThemisSession::new(Themis::build(
            grown,
            aggregates,
            10.0,
            ThemisConfig {
                bn_sample_size: Some(4_000),
                ..ThemisConfig::default()
            },
        ));
        assert_eq!(
            s.model().reweighted_sample().weights(),
            cold.model().reweighted_sample().weights(),
            "incremental IPF must equal a cold rebuild bit-for-bit"
        );
        for sql in &queries {
            let live = s.sql(sql).unwrap();
            let fresh = cold.sql(sql).unwrap();
            assert_eq!(live.result, fresh.result, "{sql}");
            assert_eq!(live.route, fresh.route, "{sql}");
        }
    }

    #[test]
    fn unmoved_ingest_keeps_replicates_and_resimulates_zero() {
        let s = live_session();
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        s.sql(sql).unwrap(); // forces the first (uncounted) simulation
        let before: Vec<*const Relation> =
            s.replicates().iter().map(Arc::as_ptr).collect();
        // An empty batch runs the full pipeline — extend, IPF, BN relearn —
        // and must conclude that nothing moved.
        let report = s.ingest("flights", &[]).unwrap();
        assert!(!report.bn_moved);
        assert_eq!(report.replicates_kept, 10);
        s.sql(sql).unwrap();
        let after: Vec<*const Relation> =
            s.replicates().iter().map(Arc::as_ptr).collect();
        assert_eq!(before, after, "replicates must be carried over by Arc");
        let snap = s.live_snapshot();
        assert_eq!(snap.replicates_resimulated, 0);
        assert_eq!(snap.replicates_kept, 10);
        assert_eq!(snap.generation, 1);
    }

    #[test]
    fn moving_ingest_resimulates_replicates_once() {
        let s = live_session();
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        s.sql(sql).unwrap();
        let report = s.ingest("flights", &rows(&[["02", "FL", "NY"]])).unwrap();
        assert!(report.bn_moved);
        assert_eq!(report.replicates_kept, 0);
        assert_eq!(s.live_snapshot().replicates_resimulated, 0, "lazy until used");
        s.sql(sql).unwrap();
        s.sql(sql).unwrap();
        let snap = s.live_snapshot();
        assert_eq!(snap.replicates_resimulated, 10, "one re-simulation of K=10");
    }

    #[test]
    fn invalidation_drops_only_entries_touching_the_ingested_table() {
        let s = live_session();
        // The session binds its one relation under any FROM name, so two
        // spellings give two fingerprints over two distinct tables.
        s.sql("SELECT COUNT(*) FROM flights").unwrap();
        s.sql("SELECT COUNT(*) FROM voyages").unwrap();
        assert_eq!(s.live_snapshot().cache_entries, 2);
        let report = s.ingest("flights", &[]).unwrap();
        assert_eq!(report.cache_entries_dropped, 1);
        let snap = s.live_snapshot();
        assert_eq!(snap.cache_entries, 1);
        assert_eq!(snap.cache_invalidations, 1);
        // The surviving entry is generation-0: the new world never serves
        // it (fingerprints carry the generation), so this is still a miss.
        s.sql("SELECT COUNT(*) FROM voyages").unwrap();
        assert_eq!(s.live_snapshot().cache_hits, 0);
    }

    #[test]
    fn bad_ingest_batches_are_rejected_atomically() {
        let s = live_session();
        let err = s.ingest("flights", &rows(&[["01", "ZZ", "NY"]]));
        assert!(matches!(err, Err(ThemisError::Ingest(_))), "{err:?}");
        let err = s.ingest("flights", &[vec!["01".to_string()]]);
        assert!(matches!(err, Err(ThemisError::Ingest(_))), "{err:?}");
        assert_eq!(s.generation(), 0);
        assert_eq!(s.model().reweighted_sample().len(), 4);
        assert_eq!(s.live_snapshot().ingest_batches, 0);
    }
}
