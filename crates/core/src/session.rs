//! The session query API: explicit engine configuration, answer
//! provenance, and cached BN replicates.
//!
//! A [`ThemisSession`] owns a built [`Themis`] model plus an
//! [`EngineOptions`], and is the intended way to *query* a model:
//!
//! * every answer is an [`Answer`] — the result plus the [`Route`] that
//!   produced it and the wall-clock time it took;
//! * [`ThemisSession::explain`] returns the routing decision without
//!   executing (and, by construction, cannot disagree with the route an
//!   actual execution takes: both call the same decision function);
//! * the K forward-sample BN replicates (§4.2.4) are simulated **once** per
//!   session and reused by every hybrid / BN-only query instead of being
//!   re-simulated per call;
//! * query setup never deep-clones a relation: the reweighted sample and
//!   each cached replicate live behind [`Arc`], and binding them into a
//!   per-query catalog is a pointer bump.

use crate::error::ThemisError;
use crate::model::Themis;
use crate::route::{self, Decision, Explain, Route};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use themis_data::{AttrId, GroupKey, Relation};
use themis_query::{EngineOptions, ExecError, QueryResult, QueryTrace, TraceSink, Value};
use themis_sql::{Query, SelectItem};
use std::collections::HashMap;

/// A query result with its provenance: which debiasing component answered
/// ([`Route`]) and how long the query took.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result rows.
    pub result: QueryResult,
    /// Which component produced the answer (§4.3 routing).
    pub route: Route,
    /// Wall-clock time the query took, from parse to merged result.
    pub elapsed: Duration,
}

impl Answer {
    /// The single value of a scalar result (no groups, one aggregate);
    /// `None` if the shape doesn't match. Forwards to
    /// [`QueryResult::scalar`].
    pub fn scalar(&self) -> Option<f64> {
        self.result.scalar()
    }
}

/// `EXPLAIN ANALYZE` output: the executed [`Answer`] plus the
/// [`QueryTrace`] collected while producing it, and the router's group
/// cardinality estimate next to what actually came back.
///
/// Produced by [`ThemisSession::analyze`]. The answer is **bit-identical**
/// to what [`ThemisSession::sql`] returns for the same query and engine
/// options — tracing only observes, it never steers execution.
#[derive(Debug, Clone)]
pub struct Analyzed {
    /// The executed answer, identical to the untraced one.
    pub answer: Answer,
    /// The span tree collected during execution.
    pub trace: QueryTrace,
    /// Upper-bound estimate of the output group count before execution:
    /// the product of the grouping columns' domain sizes (1 for scalar
    /// queries; saturating).
    pub estimated_groups: u64,
    /// Groups actually returned (rows of the answer, after any `LIMIT`).
    pub actual_groups: u64,
}

/// A query session over a built [`Themis`] model. See the module docs.
#[derive(Debug)]
pub struct ThemisSession {
    model: Themis,
    engine: EngineOptions,
    /// Lazily simulated, then reused by every query in this session. The
    /// simulation is deterministic in the model's seed, so caching changes
    /// latency, never answers.
    replicates: OnceLock<Vec<Arc<Relation>>>,
}

impl ThemisSession {
    /// Session with default engine options (hardware threads).
    pub fn new(model: Themis) -> Self {
        Self::with_engine(model, EngineOptions::default())
    }

    /// Session with explicit engine options.
    pub fn with_engine(model: Themis, engine: EngineOptions) -> Self {
        ThemisSession {
            model,
            engine,
            replicates: OnceLock::new(),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &Themis {
        &self.model
    }

    /// Consume the session, handing the model back.
    pub fn into_model(self) -> Themis {
        self.model
    }

    /// The engine configuration queries run with.
    pub fn engine(&self) -> &EngineOptions {
        &self.engine
    }

    /// Swap the engine configuration. The replicate cache is unaffected —
    /// replicates are model state, not engine state.
    pub fn set_engine(&mut self, engine: EngineOptions) {
        self.engine = engine;
    }

    /// The cached K forward-sample replicates (empty without a BN).
    fn replicates(&self) -> &[Arc<Relation>] {
        self.replicates
            .get_or_init(|| route::simulate_replicates(&self.model))
    }

    fn parse(sql: &str) -> Result<Query, ThemisError> {
        themis_sql::parse(sql)
            .map_err(|e| ThemisError::Exec(ExecError::Parse(e.to_string())))
    }

    /// Run a SQL query with §4.3 routing: in-sample point queries and plain
    /// scalar aggregates answer from the reweighted sample, missing-tuple
    /// point queries fall back to direct BN inference, and grouped queries
    /// take the hybrid union of sample groups and BN-replicate consensus
    /// groups. The FROM table name(s) are bound to the reweighted sample.
    pub fn sql(&self, sql: &str) -> Result<Answer, ThemisError> {
        self.sql_with(sql, &self.engine)
    }

    /// [`ThemisSession::sql`] with explicit per-call engine options instead
    /// of the session's own.
    ///
    /// This is what lets one session be *shared*: a server holds a single
    /// `Arc<ThemisSession>` (one model, one replicate cache — the expensive
    /// simulation paid exactly once) while every connection carries its own
    /// [`EngineOptions`] — per-connection deadlines, budgets, cancel token,
    /// and thread width — passed here per query. `&self` only: concurrent
    /// callers never contend on session state.
    pub fn sql_with(&self, sql: &str, engine: &EngineOptions) -> Result<Answer, ThemisError> {
        let start = Instant::now();
        let (_, result, route) = self.routed(sql, engine)?;
        Ok(Answer {
            result,
            route,
            elapsed: start.elapsed(),
        })
    }

    /// The one routed execution path behind [`ThemisSession::sql_with`] and
    /// [`ThemisSession::analyze_with`]: parse, decide, execute. Spans go to
    /// `engine.trace` (no-ops on the default disabled sink), and tracing
    /// never touches the result — both entry points produce bit-identical
    /// answers.
    fn routed(
        &self,
        sql: &str,
        engine: &EngineOptions,
    ) -> Result<(Query, QueryResult, Route), ThemisError> {
        let trace = &engine.trace;
        let _query_span = trace.span("query");
        let query = {
            let _span = trace.span("parse");
            Self::parse(sql)?
        };
        let decision = {
            let _span = trace.span("route");
            let decision = route::decide(&self.model, &query);
            if trace.is_enabled() {
                let kind = match &decision {
                    Decision::Sample { .. } => "sample",
                    Decision::BnPoint { .. } => "bn_point",
                    Decision::Hybrid { .. } => "hybrid",
                };
                trace.note("decision", kind);
                if matches!(decision, Decision::Hybrid { .. }) {
                    // Observed *before* `self.replicates()` forces the
                    // cache below, so the note reflects whether this query
                    // pays the simulation or reuses it.
                    let cache = if self.replicates.get().is_some() {
                        "hit"
                    } else {
                        "miss"
                    };
                    trace.note("replicate_cache", cache);
                }
            }
            decision
        };
        let (result, route) = match decision {
            Decision::Sample { .. } => (
                route::run_on(self.model.sample_arc(), &query, engine)?,
                Route::Sample,
            ),
            Decision::BnPoint {
                attrs,
                values,
                column,
                ..
            } => {
                let _span = trace.span("bn_point");
                (
                    route::bn_point_result(&self.model, &attrs, &values, column)?,
                    Route::BayesNet { k_agreed: 0 },
                )
            }
            Decision::Hybrid { .. } => route::hybrid_sql(
                self.model.sample_arc(),
                &query,
                engine,
                self.replicates(),
            )?,
        };
        Ok((query, result, route))
    }

    /// `EXPLAIN ANALYZE`: run `sql` exactly as [`ThemisSession::sql`] would
    /// — same routing, same engine, bit-identical answer — while collecting
    /// a [`QueryTrace`] of the execution, and compare the router's group
    /// estimate with what actually came back.
    pub fn analyze(&self, sql: &str) -> Result<Analyzed, ThemisError> {
        self.analyze_with(sql, &self.engine)
    }

    /// [`ThemisSession::analyze`] with explicit per-call engine options.
    /// Any sink already present in `engine` is ignored: analysis always
    /// collects into its own fresh sink.
    pub fn analyze_with(&self, sql: &str, engine: &EngineOptions) -> Result<Analyzed, ThemisError> {
        let sink = TraceSink::enabled();
        let mut traced_engine = engine.clone();
        traced_engine.trace = sink.clone();
        let start = Instant::now();
        let (query, result, route) = self.routed(sql, &traced_engine)?;
        let elapsed = start.elapsed();
        let trace = sink.finish();
        let estimated_groups = self.estimated_groups(&query);
        let actual_groups = result.rows.len() as u64;
        Ok(Analyzed {
            answer: Answer {
                result,
                route,
                elapsed,
            },
            trace,
            estimated_groups,
            actual_groups,
        })
    }

    /// Upper bound on a query's output group count, from the sample
    /// schema: the product of the distinct grouping columns' domain sizes.
    /// Scalar queries estimate 1; unknown columns contribute nothing (the
    /// engine rejects them later anyway).
    fn estimated_groups(&self, query: &Query) -> u64 {
        let schema = self.model.reweighted_sample().schema();
        let mut seen: Vec<String> = Vec::new();
        let mut estimate: u64 = 1;
        let bare_columns = query.select.iter().filter_map(|item| match item {
            SelectItem::Column(c) => Some(c),
            _ => None,
        });
        for col in query.group_by.iter().chain(bare_columns) {
            let lower = col.column.to_ascii_lowercase();
            if seen.contains(&lower) {
                continue;
            }
            seen.push(lower);
            if let Some(attr) = schema.attr_id(&col.column) {
                estimate = estimate.saturating_mul(schema.domain(attr).size() as u64);
            }
        }
        estimate
    }

    /// The routing decision for `sql`, without executing it. The returned
    /// [`Explain`] also predicts degradation: under armed limits or a fault
    /// plan, a hybrid route reports `degrades_to = Some(Sample)` — the route
    /// a tripped BN phase falls back to.
    pub fn explain(&self, sql: &str) -> Result<Explain, ThemisError> {
        self.explain_with(sql, &self.engine)
    }

    /// [`ThemisSession::explain`] with explicit per-call engine options (the
    /// degradation prediction depends on which limits are armed, so a shared
    /// session must explain against the *caller's* options).
    pub fn explain_with(&self, sql: &str, engine: &EngineOptions) -> Result<Explain, ThemisError> {
        let query = Self::parse(sql)?;
        Ok(route::decide(&self.model, &query).explain(engine))
    }

    /// SQL over the reweighted sample only (no routing, no BN) — the
    /// behaviour of the pure reweighting baselines.
    pub fn sql_sample_only(&self, sql: &str) -> Result<Answer, ThemisError> {
        self.sql_sample_only_with(sql, &self.engine)
    }

    /// [`ThemisSession::sql_sample_only`] with explicit per-call engine
    /// options.
    pub fn sql_sample_only_with(
        &self,
        sql: &str,
        engine: &EngineOptions,
    ) -> Result<Answer, ThemisError> {
        let start = Instant::now();
        let query = Self::parse(sql)?;
        let result = route::run_on(self.model.sample_arc(), &query, engine)?;
        Ok(Answer {
            result,
            route: Route::Sample,
            elapsed: start.elapsed(),
        })
    }

    /// SQL answered by the BN alone (§4.2.4 generalized): the query runs on
    /// each cached replicate; groups present in *all* replicates are
    /// returned with averaged values.
    pub fn sql_bn_only(&self, sql: &str) -> Result<Answer, ThemisError> {
        self.sql_bn_only_with(sql, &self.engine)
    }

    /// [`ThemisSession::sql_bn_only`] with explicit per-call engine options.
    pub fn sql_bn_only_with(
        &self,
        sql: &str,
        engine: &EngineOptions,
    ) -> Result<Answer, ThemisError> {
        let start = Instant::now();
        if self.model.bayesian_network().is_none() {
            return Err(ThemisError::NoBayesNet);
        }
        let query = Self::parse(sql)?;
        let result = route::bn_only_sql(&query, engine, self.replicates())?;
        let k_agreed = self.replicates().len();
        Ok(Answer {
            result,
            route: Route::BayesNet { k_agreed },
            elapsed: start.elapsed(),
        })
    }

    /// Hybrid point query (§4.3) as an [`Answer`]: if the tuple exists in
    /// the sample, `SUM(weight)` answers; otherwise direct BN inference
    /// (`n · Pr`), or 0 without a BN.
    pub fn point_query(&self, attrs: &[AttrId], values: &[u32]) -> Answer {
        let start = Instant::now();
        let sample = self.model.reweighted_sample();
        let (est, route) = if sample.contains_point(attrs, values) {
            (self.model.point_query_sample(attrs, values), Route::Sample)
        } else {
            match self.model.point_query_bn(attrs, values) {
                Ok(est) => (est, Route::BayesNet { k_agreed: 0 }),
                // No BN to fall back on: the closed-sample answer for an
                // unseen point is zero.
                Err(_) => (0.0, Route::Sample),
            }
        };
        Answer {
            result: QueryResult {
                columns: vec!["COUNT(*)".into()],
                rows: vec![vec![Value::Num(est)]],
                group_arity: 0,
            },
            route,
            elapsed: start.elapsed(),
        }
    }

    /// Hybrid `GROUP BY attrs, COUNT(*)` over the cached replicates,
    /// returning the group counts plus the route that produced them.
    pub fn group_by(&self, attrs: &[AttrId]) -> (HashMap<GroupKey, f64>, Route) {
        route::hybrid_group_by(self.model.reweighted_sample(), attrs, self.replicates())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ThemisConfig;
    use crate::route::RouteKind;
    use themis_aggregates::{AggregateResult, AggregateSet};
    use themis_data::paper_example::{example_population, example_sample};

    fn paper_session(config: ThemisConfig) -> ThemisSession {
        let p = example_population();
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        ThemisSession::new(Themis::build(example_sample(), aggregates, 10.0, config))
    }

    fn open_world_session() -> ThemisSession {
        paper_session(ThemisConfig {
            bn_sample_size: Some(4_000),
            ..ThemisConfig::default()
        })
    }

    #[test]
    fn in_sample_point_query_routes_to_sample_and_explain_agrees() {
        let s = open_world_session();
        // NC→NY is in the sample.
        let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'NC' AND d_st = 'NY'";
        let answer = s.sql(sql).unwrap();
        assert_eq!(answer.route, Route::Sample);
        assert_eq!(s.explain(sql).unwrap().route, answer.route.kind());
        // Same value the sample-only path computes.
        let direct = s.model().point_query_sample(&[AttrId(1), AttrId(2)], &[1, 2]);
        assert!((answer.scalar().unwrap() - direct).abs() < 1e-9);
    }

    #[test]
    fn missing_tuple_point_query_routes_to_bn_and_explain_agrees() {
        let s = open_world_session();
        // FL→NY exists in the population but not in the sample.
        let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'";
        assert_eq!(s.explain(sql).unwrap().route, RouteKind::BayesNet);
        let answer = s.sql(sql).unwrap();
        assert_eq!(answer.route, Route::BayesNet { k_agreed: 0 });
        let est = answer.scalar().unwrap();
        assert!(est > 0.0, "open-world estimate must be positive, got {est}");
        // Agrees with the model-level hybrid point query.
        let direct = s.model().point_query(&[AttrId(1), AttrId(2)], &[0, 2]);
        assert!((est - direct).abs() < 1e-12);
        // And the aliased spelling keeps its alias as the column name.
        let aliased = s
            .sql("SELECT COUNT(*) AS n FROM flights WHERE o_st = 'FL' AND d_st = 'NY'")
            .unwrap();
        assert_eq!(aliased.result.columns, vec!["n"]);
    }

    #[test]
    fn open_world_group_by_routes_hybrid_with_added_groups() {
        let s = open_world_session();
        let sql = "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st";
        assert_eq!(s.explain(sql).unwrap().route, RouteKind::Hybrid);
        let answer = s.sql(sql).unwrap();
        let Route::Hybrid {
            sample_groups,
            bn_groups_added,
        } = answer.route
        else {
            panic!("expected hybrid route, got {:?}", answer.route);
        };
        assert_eq!(
            sample_groups,
            s.sql_sample_only(sql).unwrap().result.rows.len()
        );
        assert!(
            bn_groups_added > 0,
            "BN must add open-world groups on the paper example"
        );
        assert_eq!(answer.result.rows.len(), sample_groups + bn_groups_added);
        // Merged output stays sorted by the group prefix.
        let rows = &answer.result.rows;
        for w in rows.windows(2) {
            assert_ne!(
                themis_query::cmp_group_prefix(&w[0], &w[1], answer.result.group_arity),
                std::cmp::Ordering::Greater,
                "rows out of order"
            );
        }
    }

    #[test]
    fn scalar_aggregates_route_to_sample() {
        let s = open_world_session();
        let sql = "SELECT COUNT(*) FROM flights WHERE date <= 1";
        assert_eq!(s.explain(sql).unwrap().route, RouteKind::Sample);
        assert_eq!(s.sql(sql).unwrap().route, Route::Sample);
        // An unknown label cannot be a BN point: sample answers 0.
        let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'ZZ'";
        assert_eq!(s.explain(sql).unwrap().route, RouteKind::Sample);
        assert_eq!(s.sql(sql).unwrap().scalar(), Some(0.0));
    }

    #[test]
    fn without_bn_everything_routes_to_sample() {
        let s = paper_session(ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        });
        for sql in [
            "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'",
            "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st",
        ] {
            assert_eq!(s.explain(sql).unwrap().route, RouteKind::Sample, "{sql}");
            assert_eq!(s.sql(sql).unwrap().route, Route::Sample, "{sql}");
        }
        assert!(matches!(
            s.sql_bn_only("SELECT COUNT(*) FROM flights"),
            Err(ThemisError::NoBayesNet)
        ));
    }

    #[test]
    fn bn_only_sql_reports_replicate_agreement() {
        let s = open_world_session();
        let answer = s
            .sql_bn_only("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st")
            .unwrap();
        assert_eq!(answer.route, Route::BayesNet { k_agreed: 10 });
        assert!(!answer.result.rows.is_empty());
    }

    #[test]
    fn parse_and_exec_errors_are_themis_errors_not_panics() {
        let s = open_world_session();
        assert!(matches!(
            s.sql("SELEKT nope"),
            Err(ThemisError::Exec(ExecError::Parse(_)))
        ));
        assert!(matches!(
            s.sql("SELECT COUNT(*) FROM flights WHERE nope = 1"),
            Err(ThemisError::Exec(ExecError::UnknownColumn(_)))
        ));
        assert!(matches!(
            s.explain("SELEKT nope"),
            Err(ThemisError::Exec(ExecError::Parse(_)))
        ));
    }

    #[test]
    fn replicates_are_simulated_once_and_reused() {
        let s = open_world_session();
        s.sql("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st").unwrap();
        let first: Vec<*const Relation> = s
            .replicates()
            .iter()
            .map(Arc::as_ptr)
            .collect();
        s.sql("SELECT d_st, COUNT(*) FROM flights GROUP BY d_st").unwrap();
        let second: Vec<*const Relation> = s
            .replicates()
            .iter()
            .map(Arc::as_ptr)
            .collect();
        assert_eq!(first, second, "cache must hand back the same replicates");
        assert_eq!(first.len(), 10, "default K");
    }

    #[test]
    fn session_group_by_matches_model_group_by() {
        let s = open_world_session();
        let attrs = [AttrId(1), AttrId(2)];
        let (groups, route) = s.group_by(&attrs);
        assert_eq!(groups, s.model().group_by(&attrs));
        let Route::Hybrid { sample_groups, .. } = route else {
            panic!("hybrid expected");
        };
        assert_eq!(
            sample_groups,
            s.model().reweighted_sample().group_counts(&attrs).len()
        );
    }

    #[test]
    fn queries_never_deep_clone_the_sample() {
        let s = open_world_session();
        let sample = Arc::clone(s.model().sample_arc());
        let before = Arc::strong_count(&sample);
        s.sql("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st").unwrap();
        s.sql("SELECT COUNT(*) FROM flights t, flights s WHERE t.d_st = s.o_st")
            .unwrap();
        s.sql_sample_only("SELECT COUNT(*) FROM flights").unwrap();
        // Per-query catalogs take Arc bumps and release them; nothing holds
        // (or copied) the sample afterwards.
        assert_eq!(Arc::strong_count(&sample), before);
        // The same holds for every cached replicate across repeated queries.
        let replicate = Arc::clone(&s.replicates()[0]);
        let before = Arc::strong_count(&replicate);
        s.sql("SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st")
            .unwrap();
        assert_eq!(Arc::strong_count(&replicate), before);
    }

    #[test]
    fn point_query_answers_carry_routes() {
        let s = open_world_session();
        let attrs = [AttrId(1), AttrId(2)];
        assert_eq!(s.point_query(&attrs, &[1, 2]).route, Route::Sample);
        assert_eq!(
            s.point_query(&attrs, &[0, 2]).route,
            Route::BayesNet { k_agreed: 0 }
        );
        let no_bn = paper_session(ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        });
        let answer = no_bn.point_query(&attrs, &[0, 2]);
        assert_eq!(answer.route, Route::Sample);
        assert_eq!(answer.scalar(), Some(0.0));
    }

    #[test]
    fn bogus_table_qualifiers_never_route_to_the_bn() {
        let s = open_world_session();
        // FL→NY misses the sample, but the qualifier names no FROM binding:
        // the engine must reject this identically to the in-sample case,
        // instead of the point router silently answering it.
        for sql in [
            "SELECT COUNT(*) FROM flights WHERE bogus.o_st = 'FL' AND bogus.d_st = 'NY'",
            "SELECT COUNT(*) FROM flights WHERE bogus.o_st = 'NC' AND bogus.d_st = 'NY'",
        ] {
            assert!(
                matches!(
                    s.sql(sql),
                    Err(ThemisError::Exec(ExecError::UnknownColumn(_)))
                ),
                "{sql}"
            );
        }
        // A qualifier that names the FROM alias still point-routes.
        let ok = s
            .sql("SELECT COUNT(*) FROM flights f WHERE f.o_st = 'FL' AND f.d_st = 'NY'")
            .unwrap();
        assert_eq!(ok.route, Route::BayesNet { k_agreed: 0 });
    }

    #[test]
    fn hybrid_limit_ranks_merged_groups_without_shadowing_sample_counts() {
        let s = open_world_session();
        let full_sql = "SELECT o_st, d_st, COUNT(*) AS n FROM flights GROUP BY o_st, d_st";
        let limited_sql = format!("{full_sql} ORDER BY n DESC LIMIT 2");
        let full = s.sql(full_sql).unwrap();
        let limited = s.sql(&limited_sql).unwrap();
        // The route metadata reflects the *untruncated* union...
        assert_eq!(limited.route, full.route);
        // ...and the limited rows are exactly the top of the merged result,
        // so every surviving group keeps the value the full answer gave it
        // (a sample group cut by LIMIT is never re-added with a BN value).
        assert_eq!(limited.result.rows.len(), 2);
        let full_map = full.result.to_map();
        for (group, vals) in limited.result.to_map() {
            assert_eq!(full_map[&group], vals, "group {group:?}");
        }
    }

    #[test]
    fn bn_only_sql_honours_order_by_and_limit() {
        let s = open_world_session();
        let answer = s
            .sql_bn_only("SELECT o_st, COUNT(*) AS n FROM flights GROUP BY o_st ORDER BY n DESC LIMIT 2")
            .unwrap();
        assert_eq!(answer.result.rows.len(), 2);
        let ns: Vec<f64> = answer
            .result
            .rows
            .iter()
            .map(|row| match row[1] {
                Value::Num(v) => v,
                _ => panic!("aggregate cell"),
            })
            .collect();
        assert!(ns[0] >= ns[1], "rows must be ordered by n DESC: {ns:?}");
        // And the unknown-ORDER-BY error still surfaces like the engine's.
        assert!(matches!(
            s.sql_bn_only("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st ORDER BY nope"),
            Err(ThemisError::Exec(ExecError::UnknownColumn(_)))
        ));
    }

    #[test]
    fn row_budget_degrades_hybrid_to_its_sample_part_and_explain_predicts_it() {
        use themis_query::Limits;
        let mut s = open_world_session();
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        let sample_part = s.sql_sample_only(sql).unwrap().result.to_map();
        // Unlimited: no degradation predicted, none happens.
        let plain = s.explain(sql).unwrap();
        assert_eq!(plain.degrades_to, None);
        assert!(matches!(s.sql(sql).unwrap().route, Route::Hybrid { .. }));
        // A row budget the 4-row sample passes but every 4000-row BN
        // replicate trips.
        s.set_engine(EngineOptions {
            limits: Limits {
                max_rows: Some(100),
                ..Limits::default()
            },
            ..EngineOptions::default()
        });
        let predicted = s.explain(sql).unwrap();
        assert_eq!(predicted.route, RouteKind::Hybrid);
        assert_eq!(predicted.degrades_to, Some(RouteKind::Sample));
        assert!(predicted.to_string().contains("degrades to Sample"));
        let answer = s.sql(sql).unwrap();
        assert_eq!(
            answer.route,
            Route::Degraded {
                planned: RouteKind::Hybrid,
                reason: crate::route::DegradeReason::RowBudgetExceeded,
            }
        );
        // A degraded answer is exactly the sample part — debiased for every
        // group the sample covers, minus the BN's open-world additions.
        assert_eq!(answer.route.kind(), RouteKind::Sample);
        assert_eq!(answer.route.planned_kind(), RouteKind::Hybrid);
        assert_eq!(answer.result.to_map(), sample_part);
        // Scalar queries have no BN phase: nothing to degrade even with
        // limits armed.
        let scalar = s.explain("SELECT COUNT(*) FROM flights").unwrap();
        assert_eq!(scalar.degrades_to, None);
    }

    #[test]
    fn contained_worker_panic_degrades_instead_of_aborting() {
        use themis_query::FaultPlan;
        let mut s = open_world_session();
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        // Morsel 1 only exists on the 4000-row replicates (morsel_rows
        // defaults to 2048); the 4-row sample never reaches it.
        s.set_engine(EngineOptions {
            fault_plan: FaultPlan::PanicAtMorsel { morsel: 1 },
            ..EngineOptions::default()
        });
        assert_eq!(s.explain(sql).unwrap().degrades_to, Some(RouteKind::Sample));
        let answer = s.sql(sql).unwrap();
        assert_eq!(
            answer.route.degraded(),
            Some(crate::route::DegradeReason::WorkerFailure)
        );
        assert!(!answer.result.rows.is_empty());
    }

    #[test]
    fn slow_bn_phase_degrades_on_deadline() {
        use std::time::Duration;
        use themis_query::{FaultPlan, Limits};
        let mut s = open_world_session();
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        // The injected stall sits on morsel 1, which only the replicates
        // have: the sample part finishes far inside the deadline, the BN
        // phase provably exceeds it.
        s.set_engine(EngineOptions {
            limits: Limits {
                deadline: Some(Duration::from_millis(50)),
                ..Limits::default()
            },
            fault_plan: FaultPlan::SlowMorsel {
                morsel: 1,
                delay: Duration::from_millis(200),
            },
            ..EngineOptions::default()
        });
        let answer = s.sql(sql).unwrap();
        assert_eq!(
            answer.route,
            Route::Degraded {
                planned: RouteKind::Hybrid,
                reason: crate::route::DegradeReason::DeadlineExceeded,
            }
        );
        assert!(answer
            .route
            .to_string()
            .contains("degraded from Hybrid: deadline exceeded"));
    }

    #[test]
    fn cancellation_stops_the_query_rather_than_degrading_it() {
        use themis_query::{CancelToken, Trip};
        let mut s = open_world_session();
        let cancel = CancelToken::new();
        cancel.cancel();
        s.set_engine(EngineOptions {
            cancel: Some(cancel),
            ..EngineOptions::default()
        });
        let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
        // A cancel token alone predicts no degradation...
        assert_eq!(s.explain(sql).unwrap().degrades_to, None);
        // ...and a cancelled query is an error, never a partial answer.
        assert!(matches!(
            s.sql(sql),
            Err(ThemisError::Exec(ExecError::Governed(Trip::Cancelled)))
        ));
    }

    #[test]
    fn engine_options_are_session_state() {
        let mut s = open_world_session();
        s.set_engine(EngineOptions {
            threads: 2,
            morsel_rows: 64,
            ..EngineOptions::default()
        });
        assert_eq!(s.engine().threads, 2);
        let a = s.sql("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st").unwrap();
        assert!(!a.result.rows.is_empty());
    }
}
