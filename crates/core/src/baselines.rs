//! Comparison baselines from the paper's evaluation.
//!
//! Besides the built-in uniform/LinReg/IPF reweighters, §6.4 compares Themis
//! against the reuse-based AQP technique of Galakatos et al. (VLDB 2017,
//! reference \[33\] in the paper): rewrite the joint probability of a two-
//! attribute `GROUP BY` as a *known* one-dimensional distribution times a
//! conditional probability estimated from the sample. The paper adapts the
//! rewrite to consume a population aggregate instead of prior query answers.

use std::collections::HashMap;
use themis_aggregates::AggregateResult;
use themis_data::{AttrId, GroupKey, Relation};

/// Answer `GROUP BY (a, b), COUNT(*)` in the style of \[33\]:
/// `n̂(a, b) = Γ(a) · Pr_S(b | a)` where `Γ(a)` is the known population count
/// of `a` and the conditional comes from the (unweighted) sample.
///
/// When the known aggregate does not cover `a`, the technique cannot use it
/// (§6.4: "\[33\] must choose which information to use per query") — use
/// [`reuse_group_by_uniform`] instead, which is equivalent to plain AQP.
///
/// # Panics
/// Panics if `known.attrs() != [a]`.
pub fn reuse_group_by(
    sample: &Relation,
    known: &AggregateResult,
    a: AttrId,
    b: AttrId,
) -> HashMap<GroupKey, f64> {
    assert_eq!(known.attrs(), [a], "known aggregate must be 1-D over `a`");
    let joint = sample.group_row_counts(&[a, b]);
    let marginal = sample.group_row_counts(&[a]);
    let mut out = HashMap::with_capacity(joint.len());
    for (key, c_ab) in joint {
        let c_a = marginal[&vec![key[0]]] as f64;
        let Some(pop_a) = known.count_for(&[key[0]]) else {
            continue;
        };
        out.insert(key, pop_a * (c_ab as f64) / c_a);
    }
    out
}

/// The fallback when no covering aggregate exists: uniform scaling of the
/// sample's joint counts — identical to default AQP.
pub fn reuse_group_by_uniform(
    sample: &Relation,
    population_size: f64,
    a: AttrId,
    b: AttrId,
) -> HashMap<GroupKey, f64> {
    let scale = population_size / sample.len() as f64;
    sample
        .group_row_counts(&[a, b])
        .into_iter()
        .map(|(k, c)| (k, c as f64 * scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_data::paper_example::{example_population, example_sample};

    #[test]
    fn reuse_rescales_by_known_marginal() {
        let p = example_population();
        let s = example_sample();
        let known = AggregateResult::compute(&p, &[AttrId(1)]); // o_st: 3/4/3
        let est = reuse_group_by(&s, &known, AttrId(1), AttrId(2));
        // Sample: o=FL rows are both FL→FL; Γ(FL) = 3 → est(FL,FL) = 3.
        assert!((est[&vec![0, 0]] - 3.0).abs() < 1e-12);
        // o=NC single row NC→NY; Γ(NC) = 4 → 4.
        assert!((est[&vec![1, 2]] - 4.0).abs() < 1e-12);
        // Missing sample pairs are missing from the estimate (closed world).
        assert!(!est.contains_key(&vec![0, 2]));
    }

    #[test]
    fn uniform_fallback_is_aqp() {
        let s = example_sample();
        let est = reuse_group_by_uniform(&s, 10.0, AttrId(1), AttrId(2));
        // Each sample row scales by 10/4.
        assert!((est[&vec![0, 0]] - 5.0).abs() < 1e-12); // 2 rows × 2.5
        assert!((est[&vec![1, 2]] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn conditional_probabilities_sum_per_group() {
        // Σ_b est(a, b) = Γ(a) for every a present in the sample.
        let p = example_population();
        let s = example_sample();
        let known = AggregateResult::compute(&p, &[AttrId(1)]);
        let est = reuse_group_by(&s, &known, AttrId(1), AttrId(2));
        let mut by_a: HashMap<u32, f64> = HashMap::new();
        for (k, v) in &est {
            *by_a.entry(k[0]).or_insert(0.0) += v;
        }
        for (a, total) in by_a {
            let expected = known.count_for(&[a]).unwrap();
            assert!((total - expected).abs() < 1e-9);
        }
    }
}
