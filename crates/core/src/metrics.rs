//! Error metrics (§6.3).
//!
//! The evaluation uses *percent difference*, `2·|true − est| / |true + est|`
//! (×100), rather than percent error, "to avoid over emphasizing errors
//! where the true value is small and to ensure missed and phantom groups
//! get the maximum error of 200 percent".

use std::collections::{BTreeSet, HashMap};
use themis_data::GroupKey;

/// Percent difference between a true and an estimated value, in `[0, 200]`.
/// Both zero → 0 (a correctly-absent group).
pub fn percent_difference(truth: f64, estimate: f64) -> f64 {
    let denom = (truth + estimate).abs();
    if denom == 0.0 {
        return 0.0;
    }
    200.0 * (truth - estimate).abs() / denom
}

/// Average percent difference across the union of groups of a true and an
/// estimated `GROUP BY` answer. Groups missing from the estimate (missed)
/// and groups present only in the estimate (phantom) both score the maximum
/// 200.
pub fn group_by_error(truth: &HashMap<GroupKey, f64>, estimate: &HashMap<GroupKey, f64>) -> f64 {
    // BTreeSet, not HashSet: the f64 sum below is order-sensitive, so the
    // union must iterate in a run-independent order.
    let keys: BTreeSet<&GroupKey> = truth.keys().chain(estimate.keys()).collect();
    if keys.is_empty() {
        return 0.0;
    }
    let total: f64 = keys
        .iter()
        .map(|k| {
            percent_difference(
                truth.get(*k).copied().unwrap_or(0.0),
                estimate.get(*k).copied().unwrap_or(0.0),
            )
        })
        .sum();
    total / keys.len() as f64
}

/// Median of a slice (interpolated for even lengths). Useful for the
/// boxplot-style summaries of Figs. 3–4.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Percentile (linear interpolation between closest ranks).
///
/// # Panics
/// Panics if `values` is empty or `p` outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate_has_zero_error() {
        assert_eq!(percent_difference(10.0, 10.0), 0.0);
        assert_eq!(percent_difference(0.0, 0.0), 0.0);
    }

    #[test]
    fn missed_and_phantom_score_two_hundred() {
        assert_eq!(percent_difference(5.0, 0.0), 200.0);
        assert_eq!(percent_difference(0.0, 7.0), 200.0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = percent_difference(3.0, 9.0);
        let b = percent_difference(9.0, 3.0);
        assert_eq!(a, b);
        assert!((a - 100.0).abs() < 1e-12); // 2·6/12
    }

    #[test]
    fn group_error_averages_over_union() {
        let truth: HashMap<GroupKey, f64> =
            [(vec![0], 10.0), (vec![1], 5.0)].into_iter().collect();
        let est: HashMap<GroupKey, f64> =
            [(vec![0], 10.0), (vec![2], 3.0)].into_iter().collect();
        // group 0: 0; group 1 missed: 200; group 2 phantom: 200 → avg 400/3.
        let e = group_by_error(&truth, &est);
        assert!((e - 400.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_answers_have_zero_error() {
        assert_eq!(group_by_error(&HashMap::new(), &HashMap::new()), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&v), 2.5);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 25.0), 1.75);
    }
}
